#include "rel/relation.h"

#include <algorithm>

namespace chainsplit {
namespace {

/// Open-addressing load limit: grow when occupied * kLoadDen >=
/// capacity * kLoadNum (i.e. load factor 0.7).
constexpr size_t kLoadNum = 7;
constexpr size_t kLoadDen = 10;
constexpr size_t kMinSlots = 16;

size_t NextPow2(size_t n) {
  size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}

size_t SlotsFor(size_t rows) {
  return NextPow2(rows * kLoadDen / kLoadNum + 1);
}

}  // namespace

// Out-of-line because pviews_ holds unique_ptrs to a type that is
// incomplete at the member's declaration point.
Relation::~Relation() = default;
Relation::Relation(Relation&&) noexcept = default;
Relation& Relation::operator=(Relation&&) noexcept = default;

PartitionedView* Relation::FindPartitionedView(
    const std::vector<int>& columns, int partitions) const {
  for (const std::unique_ptr<PartitionedView>& view : pviews_) {
    if (view->columns() == columns && view->num_partitions() == partitions) {
      return view.get();
    }
  }
  return nullptr;
}

PartitionedView* Relation::CachePartitionedView(
    std::unique_ptr<PartitionedView> view) const {
  for (std::unique_ptr<PartitionedView>& slot : pviews_) {
    if (slot->columns() == view->columns() &&
        slot->num_partitions() == view->num_partitions()) {
      slot = std::move(view);
      return slot.get();
    }
  }
  pviews_.push_back(std::move(view));
  return pviews_.back().get();
}

void Relation::Reserve(int64_t n) {
  if (n <= 0) return;
  arena_.reserve(static_cast<size_t>(n) * arity_);
  size_t want = SlotsFor(static_cast<size_t>(n));
  if (want > slots_.size()) GrowDedup(want);
}

int64_t Relation::FindRow(const TermId* row) const {
  if (slots_.empty()) return -1;
  const size_t mask = slots_.size() - 1;
  size_t idx = RowHash(row) & mask;
  while (slots_[idx] != kEmpty) {
    if (RowEquals(slots_[idx], row)) return static_cast<int64_t>(slots_[idx]);
    ++hash_collisions_;
    idx = (idx + 1) & mask;
  }
  return -1;
}

void Relation::GrowDedup(size_t min_slots) {
  size_t capacity = NextPow2(min_slots);
  slots_.assign(capacity, kEmpty);
  const size_t mask = capacity - 1;
  for (int64_t i = 0; i < num_rows_; ++i) {
    size_t idx = RowHash(RowData(static_cast<uint32_t>(i))) & mask;
    while (slots_[idx] != kEmpty) idx = (idx + 1) & mask;
    slots_[idx] = static_cast<uint32_t>(i);
  }
}

bool Relation::InsertRow(const TermId* row) {
  ++insert_attempts_;
  if (slots_.empty()) GrowDedup(kMinSlots);
  const size_t mask = slots_.size() - 1;
  size_t idx = RowHash(row) & mask;
  while (slots_[idx] != kEmpty) {
    if (RowEquals(slots_[idx], row)) return false;
    ++hash_collisions_;
    idx = (idx + 1) & mask;
  }
  CS_CHECK(num_rows_ < static_cast<int64_t>(kEmpty))
      << "relation exceeds 2^32-1 rows";
  // `row` may alias this relation's own arena (self-insertion of a
  // stored row); vector::insert must not be given a range into itself.
  const auto src = reinterpret_cast<uintptr_t>(row);
  const auto lo = reinterpret_cast<uintptr_t>(arena_.data());
  const auto hi =
      reinterpret_cast<uintptr_t>(arena_.data() + arena_.size());
  if (src >= lo && src < hi) {
    Tuple copy(row, row + arity_);
    arena_.insert(arena_.end(), copy.begin(), copy.end());
  } else {
    arena_.insert(arena_.end(), row, row + arity_);
  }
  const uint32_t row_id = static_cast<uint32_t>(num_rows_);
  slots_[idx] = row_id;
  ++num_rows_;
  ++version_;
  for (Index& index : indexes_) IndexInsert(&index, row_id);
  if (static_cast<size_t>(num_rows_) * kLoadDen >=
      slots_.size() * kLoadNum) {
    GrowDedup(slots_.size() * 2);
  }
  return true;
}

uint32_t Relation::FindBucketCounted(const Index& index, const TermId* key,
                                     int64_t* collisions) const {
  if (index.slots.empty()) return kEmpty;
  const size_t mask = index.slots.size() - 1;
  size_t idx = KeyHash(key, index.columns.size()) & mask;
  while (index.slots[idx] != kEmpty) {
    const Index::Bucket& bucket = index.buckets[index.slots[idx]];
    if (RowKeyEquals(bucket.rep, index.columns, key)) return index.slots[idx];
    ++*collisions;
    idx = (idx + 1) & mask;
  }
  return kEmpty;
}

void Relation::GrowIndexSlots(Index* index) const {
  size_t capacity =
      index->slots.empty() ? kMinSlots : index->slots.size() * 2;
  capacity = NextPow2(std::max(capacity, SlotsFor(index->buckets.size())));
  index->slots.assign(capacity, kEmpty);
  const size_t mask = capacity - 1;
  for (size_t b = 0; b < index->buckets.size(); ++b) {
    size_t idx = RowKeyHash(index->buckets[b].rep, index->columns) & mask;
    while (index->slots[idx] != kEmpty) idx = (idx + 1) & mask;
    index->slots[idx] = static_cast<uint32_t>(b);
  }
}

void Relation::IndexInsert(Index* index, uint32_t row_id) const {
  if (index->slots.empty()) GrowIndexSlots(index);
  CS_CHECK(postings_.size() < Postings::kNull) << "posting pool overflow";
  const size_t mask = index->slots.size() - 1;
  const TermId* row = RowData(row_id);
  size_t idx = RowKeyHash(row_id, index->columns) & mask;
  while (index->slots[idx] != kEmpty) {
    Index::Bucket& bucket = index->buckets[index->slots[idx]];
    const TermId* rep = RowData(bucket.rep);
    bool same = true;
    for (int c : index->columns) {
      if (rep[c] != row[c]) {
        same = false;
        break;
      }
    }
    if (same) {
      // Existing key: append into the tail block, unrolling into a new
      // block when it is full.
      PostingBlock& tail = postings_[bucket.tail];
      if (tail.count < PostingBlock::kCapacity) {
        tail.rows[tail.count++] = row_id;
      } else {
        const uint32_t node = static_cast<uint32_t>(postings_.size());
        postings_.push_back(PostingBlock{{row_id}, 1, Postings::kNull});
        postings_[bucket.tail].next = node;
        bucket.tail = node;
      }
      ++bucket.count;
      return;
    }
    ++hash_collisions_;
    idx = (idx + 1) & mask;
  }
  const uint32_t node = static_cast<uint32_t>(postings_.size());
  postings_.push_back(PostingBlock{{row_id}, 1, Postings::kNull});
  index->slots[idx] = static_cast<uint32_t>(index->buckets.size());
  index->buckets.push_back(Index::Bucket{node, node, 1, row_id});
  if (index->buckets.size() * kLoadDen >= index->slots.size() * kLoadNum) {
    GrowIndexSlots(index);
  }
}

Relation::Index& Relation::GetOrBuildIndex(
    const std::vector<int>& columns) const {
  for (Index& index : indexes_) {
    if (index.columns == columns) return index;
  }
  indexes_.push_back(Index{columns, {}, {}});
  Index& index = indexes_.back();
  index.buckets.reserve(16);
  for (int64_t i = 0; i < num_rows_; ++i) {
    IndexInsert(&index, static_cast<uint32_t>(i));
  }
  return index;
}

const Relation::Index* Relation::FindIndex(
    const std::vector<int>& columns) const {
  for (const Index& index : indexes_) {
    if (index.columns == columns) return &index;
  }
  return nullptr;
}

Relation::Postings Relation::Probe(const std::vector<int>& columns,
                                   const Tuple& key) const {
  CS_DCHECK(!columns.empty()) << "Probe requires at least one column";
  CS_DCHECK(std::is_sorted(columns.begin(), columns.end()))
      << "Probe columns must be sorted";
  ++probes_;
  const Index& index = GetOrBuildIndex(columns);
  uint32_t bucket = FindBucket(index, key.data());
  if (bucket == kEmpty) return Postings();
  return Postings(&postings_, index.buckets[bucket].head,
                  index.buckets[bucket].count);
}

int64_t Relation::UnionWith(const Relation& other) {
  CS_DCHECK(other.arity() == arity_) << "UnionWith arity mismatch";
  int64_t added = 0;
  Reserve(num_rows_ + other.num_rows());
  for (int64_t i = 0; i < other.num_rows(); ++i) {
    if (InsertRow(other.RowData(static_cast<uint32_t>(i)))) ++added;
  }
  return added;
}

void Relation::Clear() {
  num_rows_ = 0;
  ++version_;
  arena_.clear();
  slots_.clear();
  indexes_.clear();
  postings_.clear();
}

Relation::CompactionStats Relation::CompactPostings() {
  CompactionStats stats;
  stats.blocks_before = static_cast<int64_t>(postings_.size());
  ++compactions_;
  if (postings_.empty()) return stats;

  // Rewrite chains bucket by bucket (over all indexes, which share the
  // pool) into a fresh pool: each chain's blocks become adjacent and
  // fully packed, so a Probe scan walks the pool sequentially. Every
  // bucket owns at least one block (buckets are created on first
  // insert), so head/tail always land on this chain's fresh blocks.
  std::vector<PostingBlock> packed;
  packed.reserve(postings_.size());
  for (Index& index : indexes_) {
    for (Index::Bucket& bucket : index.buckets) {
      ++stats.chains;
      const uint32_t new_head = static_cast<uint32_t>(packed.size());
      for (uint32_t at = bucket.head; at != Postings::kNull;
           at = postings_[at].next) {
        const PostingBlock& block = postings_[at];
        if (block.next != Postings::kNull && block.next != at + 1) {
          ++stats.moved_blocks;  // a pool-order pointer chase eliminated
        }
        for (uint32_t s = 0; s < block.count; ++s) {
          if (packed.size() == new_head ||
              packed.back().count == PostingBlock::kCapacity) {
            if (packed.size() > new_head) {
              packed.back().next = static_cast<uint32_t>(packed.size());
            }
            packed.push_back(PostingBlock{{}, 0, Postings::kNull});
          }
          PostingBlock& dst = packed.back();
          dst.rows[dst.count++] = block.rows[s];
        }
      }
      bucket.head = new_head;
      bucket.tail = static_cast<uint32_t>(packed.size()) - 1;
    }
  }
  postings_ = std::move(packed);
  stats.blocks_after = static_cast<int64_t>(postings_.size());
  return stats;
}

PartitionedView::PartitionedView(std::vector<int> columns,
                                 int num_partitions)
    : columns_(std::move(columns)) {
  CS_CHECK(num_partitions >= 1 && num_partitions <= kMaxPartitions &&
           (num_partitions & (num_partitions - 1)) == 0)
      << "partition count must be a power of two in [1, " << kMaxPartitions
      << "], got " << num_partitions;
  CS_CHECK(!columns_.empty()) << "PartitionedView requires key columns";
  parts_.resize(static_cast<size_t>(num_partitions));
}

void PartitionedView::AssignRows(const Relation& rel) {
  const int64_t n = rel.num_rows();
  row_hashes_.resize(static_cast<size_t>(n));
  std::vector<int64_t> counts(parts_.size(), 0);
  TermId key[16];
  const size_t width = columns_.size();
  CS_CHECK(width <= 16) << "join key wider than 16 columns";
  for (int64_t i = 0; i < n; ++i) {
    const TermId* r = rel.row(i).data();
    for (size_t k = 0; k < width; ++k) key[k] = r[columns_[k]];
    const size_t h = KeyHash(key, width);
    row_hashes_[static_cast<size_t>(i)] = h;
    ++counts[static_cast<size_t>(PartitionOfHash(h))];
  }
  for (size_t p = 0; p < parts_.size(); ++p) {
    parts_[p].row_ids.clear();
    parts_[p].row_ids.reserve(static_cast<size_t>(counts[p]));
  }
  for (int64_t i = 0; i < n; ++i) {
    const int p = PartitionOfHash(row_hashes_[static_cast<size_t>(i)]);
    parts_[static_cast<size_t>(p)].row_ids.push_back(
        static_cast<uint32_t>(i));
  }
}

void PartitionedView::BuildPartition(const Relation& rel, int p) {
  Part& part = parts_[static_cast<size_t>(p)];
  const size_t nrows = part.row_ids.size();
  part.buckets.clear();
  part.pool.clear();
  if (nrows == 0) {
    part.slots.clear();
    return;
  }
  // Pre-size for one bucket per row (the worst case) so the build
  // never rehashes: all memory is touched exactly once, here, on the
  // building worker.
  part.slots.assign(NextPow2(SlotsFor(nrows)), kEmpty);
  part.pool.reserve(nrows / PostingBlock::kCapacity + 1);
  const size_t mask = part.slots.size() - 1;
  for (uint32_t row_id : part.row_ids) {
    const TermId* row = rel.row(static_cast<int64_t>(row_id)).data();
    size_t idx = row_hashes_[row_id] & mask;
    bool appended = false;
    while (part.slots[idx] != kEmpty) {
      Bucket& bucket = part.buckets[part.slots[idx]];
      const TermId* rep = rel.row(static_cast<int64_t>(bucket.rep)).data();
      bool same = true;
      for (int c : columns_) {
        if (rep[c] != row[c]) {
          same = false;
          break;
        }
      }
      if (same) {
        PostingBlock& tail = part.pool[bucket.tail];
        if (tail.count < PostingBlock::kCapacity) {
          tail.rows[tail.count++] = row_id;
        } else {
          const uint32_t node = static_cast<uint32_t>(part.pool.size());
          part.pool.push_back(
              PostingBlock{{row_id}, 1, Relation::Postings::kNull});
          part.pool[bucket.tail].next = node;
          bucket.tail = node;
        }
        ++bucket.count;
        appended = true;
        break;
      }
      idx = (idx + 1) & mask;
    }
    if (appended) continue;
    const uint32_t node = static_cast<uint32_t>(part.pool.size());
    part.pool.push_back(PostingBlock{{row_id}, 1, Relation::Postings::kNull});
    part.slots[idx] = static_cast<uint32_t>(part.buckets.size());
    part.buckets.push_back(Bucket{node, node, 1, row_id});
  }
}

void PartitionedView::Finish(const Relation& rel) {
  built_version_ = rel.version();
  row_hashes_.clear();
  row_hashes_.shrink_to_fit();
}

PartitionedView::SkewStats PartitionedView::skew() const {
  SkewStats stats;
  stats.partitions = num_partitions();
  stats.min_rows = parts_.empty() ? 0 : partition_rows(0);
  for (int p = 0; p < num_partitions(); ++p) {
    const int64_t rows = partition_rows(p);
    stats.total_rows += rows;
    stats.max_rows = std::max(stats.max_rows, rows);
    stats.min_rows = std::min(stats.min_rows, rows);
  }
  return stats;
}

}  // namespace chainsplit
