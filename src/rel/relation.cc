#include "rel/relation.h"

#include <algorithm>

#include "common/logging.h"

namespace chainsplit {

const std::vector<int64_t> Relation::kEmptyPostings = {};

bool Relation::Insert(const Tuple& tuple) {
  CS_DCHECK(static_cast<int>(tuple.size()) == arity_)
      << "arity mismatch: got " << tuple.size() << ", want " << arity_;
  ++insert_attempts_;
  auto [it, inserted] = set_.insert(tuple);
  if (!inserted) return false;
  rows_.push_back(&*it);
  int64_t row_id = static_cast<int64_t>(rows_.size()) - 1;
  for (Index& index : indexes_) {
    index.map[KeyAt(tuple, index.columns)].push_back(row_id);
  }
  return true;
}

Tuple Relation::KeyAt(const Tuple& tuple, const std::vector<int>& columns) {
  Tuple key;
  key.reserve(columns.size());
  for (int c : columns) key.push_back(tuple[c]);
  return key;
}

Relation::Index& Relation::GetOrBuildIndex(
    const std::vector<int>& columns) const {
  for (Index& index : indexes_) {
    if (index.columns == columns) return index;
  }
  indexes_.push_back(Index{columns, {}});
  Index& index = indexes_.back();
  for (int64_t i = 0; i < num_rows(); ++i) {
    index.map[KeyAt(*rows_[i], columns)].push_back(i);
  }
  return index;
}

const std::vector<int64_t>& Relation::Probe(const std::vector<int>& columns,
                                            const Tuple& key) const {
  CS_DCHECK(!columns.empty()) << "Probe requires at least one column";
  CS_DCHECK(std::is_sorted(columns.begin(), columns.end()))
      << "Probe columns must be sorted";
  const Index& index = GetOrBuildIndex(columns);
  auto it = index.map.find(key);
  if (it == index.map.end()) return kEmptyPostings;
  return it->second;
}

int64_t Relation::UnionWith(const Relation& other) {
  CS_DCHECK(other.arity() == arity_) << "UnionWith arity mismatch";
  int64_t added = 0;
  for (int64_t i = 0; i < other.num_rows(); ++i) {
    if (Insert(other.row(i))) ++added;
  }
  return added;
}

void Relation::Clear() {
  set_.clear();
  rows_.clear();
  indexes_.clear();
}

}  // namespace chainsplit
