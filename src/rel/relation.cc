#include "rel/relation.h"

#include <algorithm>

namespace chainsplit {
namespace {

/// Open-addressing load limit: grow when occupied * kLoadDen >=
/// capacity * kLoadNum (i.e. load factor 0.7).
constexpr size_t kLoadNum = 7;
constexpr size_t kLoadDen = 10;
constexpr size_t kMinSlots = 16;

size_t NextPow2(size_t n) {
  size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}

size_t SlotsFor(size_t rows) {
  return NextPow2(rows * kLoadDen / kLoadNum + 1);
}

}  // namespace

void Relation::DeleteIndexes() {
  const int n = num_indexes_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    delete index_slots_[i].load(std::memory_order_relaxed);
    index_slots_[i].store(nullptr, std::memory_order_relaxed);
  }
  num_indexes_.store(0, std::memory_order_release);
}

// Out-of-line: pviews_ holds shared_ptrs to a type that is incomplete
// at the member's declaration point, and the atomic members rule out
// the defaulted special members. Moves happen only in single-threaded
// contexts (no concurrent reader may hold a reference across a move).
Relation::~Relation() { DeleteIndexes(); }

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      num_rows_(other.num_rows_),
      version_(other.version_),
      arena_(std::move(other.arena_)),
      slots_(std::move(other.slots_)),
      pviews_(std::move(other.pviews_)),
      insert_attempts_(other.insert_attempts_),
      compactions_(other.compactions_) {
  const int n = other.num_indexes_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    index_slots_[i].store(other.index_slots_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    other.index_slots_[i].store(nullptr, std::memory_order_relaxed);
  }
  num_indexes_.store(n, std::memory_order_relaxed);
  other.num_indexes_.store(0, std::memory_order_relaxed);
  probes_.store(other.probes_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  hash_collisions_.store(
      other.hash_collisions_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.num_rows_ = 0;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  DeleteIndexes();
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  version_ = other.version_;
  arena_ = std::move(other.arena_);
  slots_ = std::move(other.slots_);
  pviews_ = std::move(other.pviews_);
  insert_attempts_ = other.insert_attempts_;
  compactions_ = other.compactions_;
  const int n = other.num_indexes_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    index_slots_[i].store(other.index_slots_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    other.index_slots_[i].store(nullptr, std::memory_order_relaxed);
  }
  num_indexes_.store(n, std::memory_order_relaxed);
  other.num_indexes_.store(0, std::memory_order_relaxed);
  probes_.store(other.probes_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  hash_collisions_.store(
      other.hash_collisions_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.num_rows_ = 0;
  return *this;
}

std::shared_ptr<PartitionedView> Relation::FindPartitionedView(
    const std::vector<int>& columns, int partitions) const {
  std::lock_guard<std::mutex> lock(pview_mu_);
  for (size_t i = 0; i < pviews_.size(); ++i) {
    const std::shared_ptr<PartitionedView>& view = pviews_[i];
    if (view->columns() == columns && view->num_partitions() == partitions) {
      // LRU touch: rotate the hit to the back (most recent) without
      // disturbing the relative order of the others.
      std::rotate(pviews_.begin() + i, pviews_.begin() + i + 1,
                  pviews_.end());
      return pviews_.back();
    }
  }
  return nullptr;
}

std::shared_ptr<PartitionedView> Relation::CachePartitionedView(
    std::unique_ptr<PartitionedView> view) const {
  std::lock_guard<std::mutex> lock(pview_mu_);
  for (size_t i = 0; i < pviews_.size(); ++i) {
    std::shared_ptr<PartitionedView>& slot = pviews_[i];
    if (slot->columns() == view->columns() &&
        slot->num_partitions() == view->num_partitions()) {
      // Lost a build race: another thread already attached a view for
      // this key. Keep the incumbent unless it is strictly older — the
      // winner's view is identical (same key, same version), so the
      // loser reuses it. Replacing a strictly older entry is safe even
      // with concurrent probes in flight: those readers hold their own
      // shared_ptr, so the old view outlives them.
      if (slot->built_version() < view->built_version()) {
        slot = std::shared_ptr<PartitionedView>(std::move(view));
      }
      std::rotate(pviews_.begin() + i, pviews_.begin() + i + 1,
                  pviews_.end());
      return pviews_.back();
    }
  }
  if (static_cast<int>(pviews_.size()) >= kMaxPartitionedViews) {
    // Evict the least recently used entry. Any join still probing it
    // keeps it alive through its own shared_ptr.
    pviews_.erase(pviews_.begin());
  }
  pviews_.push_back(std::shared_ptr<PartitionedView>(std::move(view)));
  return pviews_.back();
}

void Relation::Reserve(int64_t n) {
  if (n <= 0) return;
  arena_.reserve(static_cast<size_t>(n) * arity_);
  size_t want = SlotsFor(static_cast<size_t>(n));
  if (want > slots_.size()) GrowDedup(want);
}

int64_t Relation::FindRow(const TermId* row) const {
  if (slots_.empty()) return -1;
  int64_t collisions = 0;
  int64_t found = -1;
  const size_t mask = slots_.size() - 1;
  size_t idx = RowHash(row) & mask;
  while (slots_[idx] != kEmpty) {
    if (RowEquals(slots_[idx], row)) {
      found = static_cast<int64_t>(slots_[idx]);
      break;
    }
    ++collisions;
    idx = (idx + 1) & mask;
  }
  if (collisions != 0) {
    hash_collisions_.fetch_add(collisions, std::memory_order_relaxed);
  }
  return found;
}

void Relation::GrowDedup(size_t min_slots) {
  size_t capacity = NextPow2(min_slots);
  slots_.assign(capacity, kEmpty);
  const size_t mask = capacity - 1;
  for (int64_t i = 0; i < num_rows_; ++i) {
    size_t idx = RowHash(RowData(static_cast<uint32_t>(i))) & mask;
    while (slots_[idx] != kEmpty) idx = (idx + 1) & mask;
    slots_[idx] = static_cast<uint32_t>(i);
  }
}

bool Relation::InsertRow(const TermId* row) {
  ++insert_attempts_;
  if (slots_.empty()) GrowDedup(kMinSlots);
  int64_t collisions = 0;
  const size_t mask = slots_.size() - 1;
  size_t idx = RowHash(row) & mask;
  bool duplicate = false;
  while (slots_[idx] != kEmpty) {
    if (RowEquals(slots_[idx], row)) {
      duplicate = true;
      break;
    }
    ++collisions;
    idx = (idx + 1) & mask;
  }
  if (collisions != 0) {
    hash_collisions_.fetch_add(collisions, std::memory_order_relaxed);
  }
  if (duplicate) return false;
  CS_CHECK(num_rows_ < static_cast<int64_t>(kEmpty))
      << "relation exceeds 2^32-1 rows";
  // `row` may alias this relation's own arena (self-insertion of a
  // stored row); vector::insert must not be given a range into itself.
  const auto src = reinterpret_cast<uintptr_t>(row);
  const auto lo = reinterpret_cast<uintptr_t>(arena_.data());
  const auto hi =
      reinterpret_cast<uintptr_t>(arena_.data() + arena_.size());
  if (src >= lo && src < hi) {
    Tuple copy(row, row + arity_);
    arena_.insert(arena_.end(), copy.begin(), copy.end());
  } else {
    arena_.insert(arena_.end(), row, row + arity_);
  }
  const uint32_t row_id = static_cast<uint32_t>(num_rows_);
  slots_[idx] = row_id;
  ++num_rows_;
  ++version_;
  const int n = num_indexes_.load(std::memory_order_relaxed);
  int64_t index_collisions = 0;
  for (int i = 0; i < n; ++i) {
    IndexInsert(index_slots_[i].load(std::memory_order_relaxed), row_id,
                &index_collisions);
  }
  if (index_collisions != 0) {
    hash_collisions_.fetch_add(index_collisions, std::memory_order_relaxed);
  }
  if (static_cast<size_t>(num_rows_) * kLoadDen >=
      slots_.size() * kLoadNum) {
    GrowDedup(slots_.size() * 2);
  }
  return true;
}

uint32_t Relation::FindBucketCounted(const Index& index, const TermId* key,
                                     int64_t* collisions) const {
  if (index.slots.empty()) return kEmpty;
  const size_t mask = index.slots.size() - 1;
  size_t idx = KeyHash(key, index.columns.size()) & mask;
  while (index.slots[idx] != kEmpty) {
    const Index::Bucket& bucket = index.buckets[index.slots[idx]];
    if (RowKeyEquals(bucket.rep, index.columns, key)) return index.slots[idx];
    ++*collisions;
    idx = (idx + 1) & mask;
  }
  return kEmpty;
}

void Relation::GrowIndexSlots(Index* index) const {
  size_t capacity =
      index->slots.empty() ? kMinSlots : index->slots.size() * 2;
  capacity = NextPow2(std::max(capacity, SlotsFor(index->buckets.size())));
  index->slots.assign(capacity, kEmpty);
  const size_t mask = capacity - 1;
  for (size_t b = 0; b < index->buckets.size(); ++b) {
    size_t idx = RowKeyHash(index->buckets[b].rep, index->columns) & mask;
    while (index->slots[idx] != kEmpty) idx = (idx + 1) & mask;
    index->slots[idx] = static_cast<uint32_t>(b);
  }
}

void Relation::IndexInsert(Index* index, uint32_t row_id,
                           int64_t* collisions) const {
  if (index->slots.empty()) GrowIndexSlots(index);
  std::vector<PostingBlock>& pool = index->pool;
  CS_CHECK(pool.size() < Postings::kNull) << "posting pool overflow";
  const size_t mask = index->slots.size() - 1;
  const TermId* row = RowData(row_id);
  size_t idx = RowKeyHash(row_id, index->columns) & mask;
  while (index->slots[idx] != kEmpty) {
    Index::Bucket& bucket = index->buckets[index->slots[idx]];
    const TermId* rep = RowData(bucket.rep);
    bool same = true;
    for (int c : index->columns) {
      if (rep[c] != row[c]) {
        same = false;
        break;
      }
    }
    if (same) {
      // Existing key: append into the tail block, unrolling into a new
      // block when it is full.
      PostingBlock& tail = pool[bucket.tail];
      if (tail.count < PostingBlock::kCapacity) {
        tail.rows[tail.count++] = row_id;
      } else {
        const uint32_t node = static_cast<uint32_t>(pool.size());
        pool.push_back(PostingBlock{{row_id}, 1, Postings::kNull});
        pool[bucket.tail].next = node;
        bucket.tail = node;
      }
      ++bucket.count;
      return;
    }
    ++*collisions;
    idx = (idx + 1) & mask;
  }
  const uint32_t node = static_cast<uint32_t>(pool.size());
  pool.push_back(PostingBlock{{row_id}, 1, Postings::kNull});
  index->slots[idx] = static_cast<uint32_t>(index->buckets.size());
  index->buckets.push_back(Index::Bucket{node, node, 1, row_id});
  if (index->buckets.size() * kLoadDen >= index->slots.size() * kLoadNum) {
    GrowIndexSlots(index);
  }
}

Relation::Index& Relation::GetOrBuildIndex(
    const std::vector<int>& columns) const {
  // Fast path: already published (acquire on the count pairs with the
  // release in the builder, so the Index contents are visible).
  if (Index* found = FindIndex(columns)) return *found;
  std::lock_guard<std::mutex> lock(index_mu_);
  // Re-check: another reader may have built it while we waited.
  if (Index* found = FindIndex(columns)) return *found;
  const int n = num_indexes_.load(std::memory_order_relaxed);
  CS_CHECK(n < kMaxIndexes) << "more than " << kMaxIndexes
                            << " column-subset indexes on one relation";
  auto built = std::make_unique<Index>();
  built->columns = columns;
  built->buckets.reserve(16);
  int64_t collisions = 0;
  for (int64_t i = 0; i < num_rows_; ++i) {
    IndexInsert(built.get(), static_cast<uint32_t>(i), &collisions);
  }
  if (collisions != 0) {
    hash_collisions_.fetch_add(collisions, std::memory_order_relaxed);
  }
  // Publish: slot pointer first, then the count with release so any
  // reader that observes the new count sees a complete Index.
  Index* index = built.release();
  index_slots_[n].store(index, std::memory_order_relaxed);
  num_indexes_.store(n + 1, std::memory_order_release);
  return *index;
}

Relation::Index* Relation::FindIndex(const std::vector<int>& columns) const {
  const int n = num_indexes_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    Index* index = index_slots_[i].load(std::memory_order_relaxed);
    if (index->columns == columns) return index;
  }
  return nullptr;
}

Relation::Postings Relation::Probe(const std::vector<int>& columns,
                                   const Tuple& key) const {
  CS_DCHECK(!columns.empty()) << "Probe requires at least one column";
  CS_DCHECK(std::is_sorted(columns.begin(), columns.end()))
      << "Probe columns must be sorted";
  probes_.fetch_add(1, std::memory_order_relaxed);
  const Index& index = GetOrBuildIndex(columns);
  uint32_t bucket = FindBucket(index, key.data());
  if (bucket == kEmpty) return Postings();
  return Postings(&index.pool, index.buckets[bucket].head,
                  index.buckets[bucket].count);
}

int64_t Relation::UnionWith(const Relation& other) {
  CS_DCHECK(other.arity() == arity_) << "UnionWith arity mismatch";
  int64_t added = 0;
  Reserve(num_rows_ + other.num_rows());
  for (int64_t i = 0; i < other.num_rows(); ++i) {
    if (InsertRow(other.RowData(static_cast<uint32_t>(i)))) ++added;
  }
  return added;
}

void Relation::Clear() {
  num_rows_ = 0;
  ++version_;
  arena_.clear();
  slots_.clear();
  DeleteIndexes();
}

Relation::CompactionStats Relation::CompactPostings() {
  CompactionStats stats;
  ++compactions_;

  // Rewrite each index's chains bucket by bucket into a fresh pool:
  // each chain's blocks become adjacent and fully packed, so a Probe
  // scan walks the pool sequentially. Every bucket owns at least one
  // block (buckets are created on first insert), so head/tail always
  // land on this chain's fresh blocks. Requires exclusive access, like
  // Insert: concurrent readers may be walking the old pools.
  const int n = num_indexes_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    Index& index = *index_slots_[i].load(std::memory_order_relaxed);
    stats.blocks_before += static_cast<int64_t>(index.pool.size());
    if (index.pool.empty()) continue;
    std::vector<PostingBlock> packed;
    packed.reserve(index.pool.size());
    for (Index::Bucket& bucket : index.buckets) {
      ++stats.chains;
      const uint32_t new_head = static_cast<uint32_t>(packed.size());
      for (uint32_t at = bucket.head; at != Postings::kNull;
           at = index.pool[at].next) {
        const PostingBlock& block = index.pool[at];
        if (block.next != Postings::kNull && block.next != at + 1) {
          ++stats.moved_blocks;  // a pool-order pointer chase eliminated
        }
        for (uint32_t s = 0; s < block.count; ++s) {
          if (packed.size() == new_head ||
              packed.back().count == PostingBlock::kCapacity) {
            if (packed.size() > new_head) {
              packed.back().next = static_cast<uint32_t>(packed.size());
            }
            packed.push_back(PostingBlock{{}, 0, Postings::kNull});
          }
          PostingBlock& dst = packed.back();
          dst.rows[dst.count++] = block.rows[s];
        }
      }
      bucket.head = new_head;
      bucket.tail = static_cast<uint32_t>(packed.size()) - 1;
    }
    index.pool = std::move(packed);
    stats.blocks_after += static_cast<int64_t>(index.pool.size());
  }
  return stats;
}

PartitionedView::PartitionedView(std::vector<int> columns,
                                 int num_partitions)
    : columns_(std::move(columns)) {
  CS_CHECK(num_partitions >= 1 && num_partitions <= kMaxPartitions &&
           (num_partitions & (num_partitions - 1)) == 0)
      << "partition count must be a power of two in [1, " << kMaxPartitions
      << "], got " << num_partitions;
  CS_CHECK(!columns_.empty()) << "PartitionedView requires key columns";
  parts_.resize(static_cast<size_t>(num_partitions));
}

void PartitionedView::AssignRows(const Relation& rel) {
  const int64_t n = rel.num_rows();
  row_hashes_.resize(static_cast<size_t>(n));
  std::vector<int64_t> counts(parts_.size(), 0);
  TermId key[16];
  const size_t width = columns_.size();
  CS_CHECK(width <= 16) << "join key wider than 16 columns";
  for (int64_t i = 0; i < n; ++i) {
    const TermId* r = rel.row(i).data();
    for (size_t k = 0; k < width; ++k) key[k] = r[columns_[k]];
    const size_t h = KeyHash(key, width);
    row_hashes_[static_cast<size_t>(i)] = h;
    ++counts[static_cast<size_t>(PartitionOfHash(h))];
  }
  for (size_t p = 0; p < parts_.size(); ++p) {
    parts_[p].row_ids.clear();
    parts_[p].row_ids.reserve(static_cast<size_t>(counts[p]));
  }
  for (int64_t i = 0; i < n; ++i) {
    const int p = PartitionOfHash(row_hashes_[static_cast<size_t>(i)]);
    parts_[static_cast<size_t>(p)].row_ids.push_back(
        static_cast<uint32_t>(i));
  }
}

void PartitionedView::BuildPartition(const Relation& rel, int p) {
  Part& part = parts_[static_cast<size_t>(p)];
  const size_t nrows = part.row_ids.size();
  part.buckets.clear();
  part.pool.clear();
  if (nrows == 0) {
    part.slots.clear();
    return;
  }
  // Pre-size for one bucket per row (the worst case) so the build
  // never rehashes: all memory is touched exactly once, here, on the
  // building worker.
  part.slots.assign(NextPow2(SlotsFor(nrows)), kEmpty);
  part.pool.reserve(nrows / PostingBlock::kCapacity + 1);
  const size_t mask = part.slots.size() - 1;
  for (uint32_t row_id : part.row_ids) {
    const TermId* row = rel.row(static_cast<int64_t>(row_id)).data();
    size_t idx = row_hashes_[row_id] & mask;
    bool appended = false;
    while (part.slots[idx] != kEmpty) {
      Bucket& bucket = part.buckets[part.slots[idx]];
      const TermId* rep = rel.row(static_cast<int64_t>(bucket.rep)).data();
      bool same = true;
      for (int c : columns_) {
        if (rep[c] != row[c]) {
          same = false;
          break;
        }
      }
      if (same) {
        PostingBlock& tail = part.pool[bucket.tail];
        if (tail.count < PostingBlock::kCapacity) {
          tail.rows[tail.count++] = row_id;
        } else {
          const uint32_t node = static_cast<uint32_t>(part.pool.size());
          part.pool.push_back(
              PostingBlock{{row_id}, 1, Relation::Postings::kNull});
          part.pool[bucket.tail].next = node;
          bucket.tail = node;
        }
        ++bucket.count;
        appended = true;
        break;
      }
      idx = (idx + 1) & mask;
    }
    if (appended) continue;
    const uint32_t node = static_cast<uint32_t>(part.pool.size());
    part.pool.push_back(PostingBlock{{row_id}, 1, Relation::Postings::kNull});
    part.slots[idx] = static_cast<uint32_t>(part.buckets.size());
    part.buckets.push_back(Bucket{node, node, 1, row_id});
  }
}

void PartitionedView::Finish(const Relation& rel) {
  built_version_ = rel.version();
  row_hashes_.clear();
  row_hashes_.shrink_to_fit();
}

PartitionedView::SkewStats PartitionedView::skew() const {
  SkewStats stats;
  stats.partitions = num_partitions();
  stats.min_rows = parts_.empty() ? 0 : partition_rows(0);
  for (int p = 0; p < num_partitions(); ++p) {
    const int64_t rows = partition_rows(p);
    stats.total_rows += rows;
    stats.max_rows = std::max(stats.max_rows, rows);
    stats.min_rows = std::min(stats.min_rows, rows);
  }
  return stats;
}

}  // namespace chainsplit
