#ifndef CHAINSPLIT_REL_CATALOG_H_
#define CHAINSPLIT_REL_CATALOG_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "rel/relation.h"

namespace chainsplit {

/// Per-relation statistics used by the chain-split cost model (§2.1 of
/// the paper): cardinality and per-column distinct-value counts, from
/// which selectivities and join expansion ratios are derived.
struct RelationStats {
  int64_t cardinality = 0;
  std::vector<int64_t> distinct;  // one entry per column

  /// Average number of tuples sharing one value of `column`
  /// (cardinality / distinct). This is the per-column fan-out used in
  /// the join expansion ratio. Returns 0 for an empty relation.
  double FanOut(int column) const {
    if (cardinality == 0) return 0.0;
    return static_cast<double>(cardinality) /
           static_cast<double>(distinct[column]);
  }
};

/// Computes exact statistics for `relation` by one scan.
RelationStats ComputeStats(const Relation& relation);

/// The deductive database of the paper's model: an EDB (relations), an
/// IDB (the Program's rules) and a term universe, sharing one TermPool
/// so relation values and rule constants are the same interned terms.
///
/// Typical use:
///   Database db;
///   CS_RETURN_IF_ERROR(ParseProgram(source, &db.program()));
///   CS_RETURN_IF_ERROR(db.LoadProgramFacts());
class Database {
 public:
  Database() : program_(&pool_) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  TermPool& pool() { return pool_; }
  const TermPool& pool() const { return pool_; }
  Program& program() { return program_; }
  const Program& program() const { return program_; }

  /// Relation for `pred`, created (empty, with the predicate's arity)
  /// on first access.
  Relation* GetOrCreateRelation(PredId pred);

  /// Relation for `pred`, or nullptr when no facts were ever stored.
  const Relation* GetRelation(PredId pred) const;

  /// Moves every fact of program() into its EDB relation. Non-ground
  /// facts are impossible (the parser classifies them as rules).
  Status LoadProgramFacts();

  /// Inserts one fact tuple for `pred`. Returns true when new.
  bool InsertFact(PredId pred, const Tuple& tuple);

  /// Cached statistics for `pred` (recomputed when the relation grew).
  const RelationStats& Stats(PredId pred);

  /// Predicates that currently have an EDB relation.
  std::vector<PredId> StoredPredicates() const;

 private:
  struct CachedStats {
    int64_t at_size = -1;
    RelationStats stats;
  };

  TermPool pool_;
  Program program_;
  std::unordered_map<PredId, Relation> relations_;
  std::unordered_map<PredId, CachedStats> stats_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_CATALOG_H_
