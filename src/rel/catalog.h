#ifndef CHAINSPLIT_REL_CATALOG_H_
#define CHAINSPLIT_REL_CATALOG_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "rel/relation.h"

namespace chainsplit {

/// Per-relation statistics used by the chain-split cost model (§2.1 of
/// the paper): cardinality and per-column distinct-value counts, from
/// which selectivities and join expansion ratios are derived.
struct RelationStats {
  int64_t cardinality = 0;
  std::vector<int64_t> distinct;  // one entry per column

  /// Average number of tuples sharing one value of `column`
  /// (cardinality / distinct). This is the per-column fan-out used in
  /// the join expansion ratio. Returns 0 for an empty relation.
  double FanOut(int column) const {
    if (cardinality == 0) return 0.0;
    return static_cast<double>(cardinality) /
           static_cast<double>(distinct[column]);
  }
};

/// Computes exact statistics for `relation` by one scan.
RelationStats ComputeStats(const Relation& relation);

/// What an evaluator needs from a deductive database: the term
/// universe, the program, and relation storage. Two implementations:
///
///  - Database: the real thing — owns the pool, the program, and the
///    EDB relations.
///  - DatabaseOverlay: a query-local copy-on-write view over a frozen
///    Database. Reads fall through to the base; every write lands in
///    an overlay-local relation, so evaluating through an overlay
///    never mutates the base. This is what lets the query service run
///    whole uncached evaluations under the *shared* side of its
///    database lock: magic seeds, adorned/magic relations, deltas and
///    answer relations are all per-query scratch.
///
/// Evaluators (planner, seminaive, top-down, buffered chain, partial,
/// counting) take an EvalDb* and work identically against either.
class EvalDb {
 public:
  virtual ~EvalDb() = default;

  virtual TermPool& pool() = 0;
  virtual const TermPool& pool() const = 0;
  virtual Program& program() = 0;
  virtual const Program& program() const = 0;

  /// Relation for `pred`, created (empty, with the predicate's arity)
  /// on first access.
  virtual Relation* GetOrCreateRelation(PredId pred) = 0;

  /// Relation for `pred`, or nullptr when no facts were ever stored.
  virtual const Relation* GetRelation(PredId pred) const = 0;

  /// Inserts one fact tuple for `pred`. Returns true when new.
  virtual bool InsertFact(PredId pred, const Tuple& tuple) = 0;

  /// Cached statistics for `pred` (recomputed when the relation grew).
  virtual RelationStats Stats(PredId pred) = 0;

  /// Predicates that currently have a stored relation.
  virtual std::vector<PredId> StoredPredicates() const = 0;
};

/// The deductive database of the paper's model: an EDB (relations), an
/// IDB (the Program's rules) and a term universe, sharing one TermPool
/// so relation values and rule constants are the same interned terms.
///
/// Typical use:
///   Database db;
///   CS_RETURN_IF_ERROR(ParseProgram(source, &db.program()));
///   CS_RETURN_IF_ERROR(db.LoadProgramFacts());
///
/// Thread-safety: structural mutation (creating relations, inserting
/// facts, loading) requires exclusive access. With no mutator running,
/// the read surface — GetRelation, relation probes (which may lazily
/// build indexes), Stats, interning via pool()/program() — is safe for
/// concurrent readers; this is exactly the regime the query service's
/// shared lock establishes.
class Database : public EvalDb {
 public:
  Database() : program_(&pool_) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  TermPool& pool() override { return pool_; }
  const TermPool& pool() const override { return pool_; }
  Program& program() override { return program_; }
  const Program& program() const override { return program_; }

  Relation* GetOrCreateRelation(PredId pred) override;
  const Relation* GetRelation(PredId pred) const override;

  /// Moves every fact of program() into its EDB relation. Non-ground
  /// facts are impossible (the parser classifies them as rules).
  Status LoadProgramFacts();

  bool InsertFact(PredId pred, const Tuple& tuple) override;

  /// Cached statistics for `pred` (recomputed when the relation grew).
  /// Safe for concurrent readers: the cache is mutex-guarded.
  RelationStats Stats(PredId pred) override;

  std::vector<PredId> StoredPredicates() const override;

 private:
  struct CachedStats {
    int64_t at_size = -1;
    RelationStats stats;
  };

  TermPool pool_;
  Program program_;
  std::unordered_map<PredId, Relation> relations_;
  std::unordered_map<PredId, CachedStats> stats_;
  mutable std::mutex stats_mu_;  // guards stats_ (a cache, not state)
};

/// Query-local copy-on-write view over a frozen base Database (see
/// EvalDb). Lookups resolve to overlay-local relations first — the
/// magic/adorned/delta/answer relations a query materializes — and
/// fall through to the base for everything else. The first write to a
/// predicate that has base facts copies the base relation into the
/// overlay (copy-on-write); predicates the query never writes are read
/// directly from the base with zero copying.
///
/// The overlay itself is single-threaded (one per query); it only
/// requires that nobody mutates the base while it is alive.
class DatabaseOverlay final : public EvalDb {
 public:
  explicit DatabaseOverlay(Database* base) : base_(base) {}
  DatabaseOverlay(const DatabaseOverlay&) = delete;
  DatabaseOverlay& operator=(const DatabaseOverlay&) = delete;

  TermPool& pool() override { return base_->pool(); }
  const TermPool& pool() const override {
    return static_cast<const Database*>(base_)->pool();
  }
  Program& program() override { return base_->program(); }
  const Program& program() const override {
    return static_cast<const Database*>(base_)->program();
  }

  Relation* GetOrCreateRelation(PredId pred) override;
  const Relation* GetRelation(PredId pred) const override;
  bool InsertFact(PredId pred, const Tuple& tuple) override;
  RelationStats Stats(PredId pred) override;
  std::vector<PredId> StoredPredicates() const override;

  /// Scratch footprint of this overlay, for service telemetry.
  struct Telemetry {
    int64_t relations = 0;    // overlay-local relations materialized
    int64_t arena_bytes = 0;  // their arena capacity in bytes
  };
  Telemetry telemetry() const;

 private:
  struct CachedStats {
    int64_t at_size = -1;
    RelationStats stats;
  };

  Database* base_;
  std::unordered_map<PredId, Relation> local_;
  std::unordered_map<PredId, CachedStats> stats_;
};

/// Per-stratum copy-on-write layer used by the parallel SCC scheduler
/// (core/scc_schedule.h). One StratumOverlay holds the fixpoint of one
/// SCC of the program's predicate dependency graph. Reads resolve to
/// stratum-local relations first, then to an *import map* — immutable
/// relation snapshots of completed predecessor strata and of the parent
/// database, assembled by the scheduling thread before the stratum is
/// dispatched. Writes always land locally, with the first write to an
/// imported predicate copying the import (copy-on-write), exactly like
/// DatabaseOverlay over its base.
///
/// Unlike DatabaseOverlay, a StratumOverlay never reads the parent's
/// relation *map* — every relation it may touch was resolved into
/// `imports_` up front — so concurrent strata share no mutable state:
/// each is single-threaded over its own locals plus frozen imports
/// (concurrent lazy index builds on a shared import are publication-
/// safe, see Relation). The parent is used only for the term pool
/// (thread-safe interning) and the program (read-only during
/// evaluation).
class StratumOverlay final : public EvalDb {
 public:
  explicit StratumOverlay(EvalDb* parent) : parent_(parent) {}
  StratumOverlay(const StratumOverlay&) = delete;
  StratumOverlay& operator=(const StratumOverlay&) = delete;

  TermPool& pool() override { return parent_->pool(); }
  const TermPool& pool() const override {
    return static_cast<const EvalDb*>(parent_)->pool();
  }
  Program& program() override { return parent_->program(); }
  const Program& program() const override {
    return static_cast<const EvalDb*>(parent_)->program();
  }

  /// Makes `rel` visible to reads of `pred` (local writes shadow it).
  /// Must be called before evaluation starts; `rel` must stay alive
  /// and unmutated while this overlay is in use. Null is ignored.
  void AddImport(PredId pred, const Relation* rel) {
    if (rel != nullptr) imports_[pred] = rel;
  }

  Relation* GetOrCreateRelation(PredId pred) override;
  const Relation* GetRelation(PredId pred) const override;
  bool InsertFact(PredId pred, const Tuple& tuple) override;
  RelationStats Stats(PredId pred) override;
  std::vector<PredId> StoredPredicates() const override;

  /// Predicates this stratum wrote (its fixpoint's head relations).
  const std::unordered_map<PredId, Relation>& local() const { return local_; }

  /// Publishes this stratum's relations into `*target*`: for every
  /// locally written predicate, appends the rows `target` does not
  /// already hold, in this stratum's derivation order. Called by the
  /// scheduling thread, in topological stratum order, once the whole
  /// schedule succeeded — successors read a stratum through its
  /// overlay, so publication can be deferred to one deterministic
  /// merge pass.
  void PublishTo(EvalDb* target) const;

 private:
  struct CachedStats {
    int64_t at_size = -1;
    RelationStats stats;
  };

  EvalDb* parent_;  // pool/program only; relations come from imports_
  std::unordered_map<PredId, const Relation*> imports_;
  std::unordered_map<PredId, Relation> local_;
  std::unordered_map<PredId, CachedStats> stats_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_CATALOG_H_
