#ifndef CHAINSPLIT_REL_OPS_H_
#define CHAINSPLIT_REL_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rel/relation.h"

namespace chainsplit {

class ThreadPool;

/// Column-pair equality condition for a join: left column == right
/// column.
struct JoinKey {
  int left_column;
  int right_column;
};

/// A prepared hash-join condition: the keys sorted by right column (the
/// order Relation::Probe requires) plus the derived probe-column list.
/// Compute it once per compiled rule / reused join and pass it to
/// HashJoin to avoid re-sorting on every call.
struct JoinSpec {
  std::vector<JoinKey> keys;       // sorted by right_column
  std::vector<int> right_columns;  // keys[i].right_column, ascending

  // Explicit and no default constructor: brace-initialized HashJoin
  // key lists keep resolving to the std::vector<JoinKey> overload.
  explicit JoinSpec(std::vector<JoinKey> join_keys);
};

/// Hash join of `left` and `right` on `spec`. The output tuple is the
/// concatenation of the left tuple and the right tuple, projected to
/// `output_columns` (indexes into that concatenation). With empty
/// keys this is a cross product — the degenerate plan the paper warns
/// about when merging unshared chains (§1.1); benchmark E8 measures it.
///
/// Above a probe-side row threshold (see SetParallelJoinMinRows) the
/// probe loop is partitioned across the shared ThreadPool into
/// thread-local outputs merged in partition order, so the result's
/// contents *and row order* are identical to the single-threaded path.
/// `out` must be distinct from `left` and `right`.
void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out);

/// Convenience overload preparing the JoinSpec on the fly.
void HashJoin(const Relation& left, const Relation& right,
              const std::vector<JoinKey>& keys,
              const std::vector<int>& output_columns, Relation* out);

/// Pool-explicit variant: runs the partitioned path on `pool` instead
/// of the process-wide shared pool. Used by tests to exercise the
/// parallel path with a controlled thread count on any hardware.
void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out, ThreadPool* pool);

/// Minimum probe-side rows before HashJoin goes parallel. Returns the
/// previous threshold; tests use this to force either path.
int64_t SetParallelJoinMinRows(int64_t min_rows);

/// Number of parallel join batches executed process-wide (a batch = one
/// HashJoin call that took the partitioned path). Monotonic; stats
/// collectors report deltas.
int64_t ParallelJoinBatches();

/// Copies the tuples of `in` satisfying `predicate` into `*out`.
void Select(const Relation& in, const std::function<bool(const Tuple&)>& predicate,
            Relation* out);

/// Projects `in` onto `columns` (duplicates removed by Relation).
void Project(const Relation& in, const std::vector<int>& columns,
             Relation* out);

/// Inserts into `*out` the tuples of `a` that are not in `b` (the
/// semi-naive delta step). `a` and `b` must have equal arity.
void Difference(const Relation& a, const Relation& b, Relation* out);

/// True when `a` and `b` contain exactly the same tuples.
bool SameTuples(const Relation& a, const Relation& b);

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_OPS_H_
