#ifndef CHAINSPLIT_REL_OPS_H_
#define CHAINSPLIT_REL_OPS_H_

#include <functional>
#include <vector>

#include "rel/relation.h"

namespace chainsplit {

/// Column-pair equality condition for a join: left column == right
/// column.
struct JoinKey {
  int left_column;
  int right_column;
};

/// Hash join of `left` and `right` on `keys`. The output tuple is the
/// concatenation of the left tuple and the right tuple, projected to
/// `output_columns` (indexes into that concatenation). With empty
/// `keys` this is a cross product — the degenerate plan the paper warns
/// about when merging unshared chains (§1.1); benchmark E8 measures it.
void HashJoin(const Relation& left, const Relation& right,
              const std::vector<JoinKey>& keys,
              const std::vector<int>& output_columns, Relation* out);

/// Copies the tuples of `in` satisfying `predicate` into `*out`.
void Select(const Relation& in, const std::function<bool(const Tuple&)>& predicate,
            Relation* out);

/// Projects `in` onto `columns` (duplicates removed by Relation).
void Project(const Relation& in, const std::vector<int>& columns,
             Relation* out);

/// Inserts into `*out` the tuples of `a` that are not in `b` (the
/// semi-naive delta step). `a` and `b` must have equal arity.
void Difference(const Relation& a, const Relation& b, Relation* out);

/// True when `a` and `b` contain exactly the same tuples.
bool SameTuples(const Relation& a, const Relation& b);

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_OPS_H_
