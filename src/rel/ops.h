#ifndef CHAINSPLIT_REL_OPS_H_
#define CHAINSPLIT_REL_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rel/relation.h"

namespace chainsplit {

class ThreadPool;

/// Column-pair equality condition for a join: left column == right
/// column.
struct JoinKey {
  int left_column;
  int right_column;
};

/// A prepared hash-join condition: the keys sorted by right column (the
/// order Relation::Probe requires) plus the derived probe-column list.
/// Compute it once per compiled rule / reused join and pass it to
/// HashJoin to avoid re-sorting on every call.
struct JoinSpec {
  std::vector<JoinKey> keys;       // sorted by right_column
  std::vector<int> right_columns;  // keys[i].right_column, ascending

  // Explicit and no default constructor: brace-initialized HashJoin
  // key lists keep resolving to the std::vector<JoinKey> overload.
  explicit JoinSpec(std::vector<JoinKey> join_keys);
};

/// Hash join of `left` and `right` on `spec`. The output tuple is the
/// concatenation of the left tuple and the right tuple, projected to
/// `output_columns` (indexes into that concatenation). With empty
/// keys this is a cross product — the degenerate plan the paper warns
/// about when merging unshared chains (§1.1); benchmark E8 measures it.
///
/// Above a probe-side row threshold (see SetParallelJoinMinRows) the
/// join runs in parallel on the shared ThreadPool. The default path
/// radix-partitions both sides by join-key hash: each worker builds
/// and probes one partition's private hash table (stable
/// worker<->partition affinity, NUMA first-touch when available — see
/// docs/perf_notes.md), and the per-partition outputs are merged back
/// in probe-row order. Either way the result's contents *and row
/// order* are byte-identical to the single-threaded path. `out` must
/// be distinct from `left` and `right`.
void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out);

/// Convenience overload preparing the JoinSpec on the fly.
void HashJoin(const Relation& left, const Relation& right,
              const std::vector<JoinKey>& keys,
              const std::vector<int>& output_columns, Relation* out);

/// Pool-explicit variant: runs the partitioned path on `pool` instead
/// of the process-wide shared pool. Used by tests to exercise the
/// parallel path with a controlled thread count on any hardware.
void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out, ThreadPool* pool);

/// Minimum probe-side rows before HashJoin goes parallel. Returns the
/// previous threshold; tests use this to force either path.
int64_t SetParallelJoinMinRows(int64_t min_rows);

/// Number of parallel join batches executed process-wide (a batch = one
/// HashJoin call that took a parallel path, contiguous or
/// partitioned). Monotonic; stats collectors report deltas.
int64_t ParallelJoinBatches();

/// Which parallel algorithm HashJoin uses above the row threshold.
/// kAuto picks partitioned when the build side is large enough to
/// amortize partitioning, else the contiguous chunked probe; the
/// explicit modes exist for benchmarks and differential tests.
enum class ParallelJoinMode {
  kAuto,
  kSerial,       // always single-threaded (the determinism oracle)
  kContiguous,   // PR 1 path: chunked probe of one global index
  kPartitioned,  // radix-partitioned build + affinity-pinned probe
};

/// Sets the process-wide parallel join mode; returns the previous one.
ParallelJoinMode SetParallelJoinMode(ParallelJoinMode mode);

/// Cumulative telemetry of the partitioned join path (process-wide,
/// monotonic; report deltas). `max_partition_rows` accumulates the
/// largest build partition of each batch, so
/// max_partition_rows * partitions / build_rows ~ average skew (1.0 =
/// perfectly balanced partitions).
struct PartitionedJoinTelemetry {
  int64_t batches = 0;             // joins through the partitioned path
  int64_t contiguous_batches = 0;  // joins through the contiguous path
  int64_t views_built = 0;         // build-side partitioned views built
  int64_t view_hits = 0;           // cached view reused (fresh, same key)
  int64_t view_misses = 0;         // no cached view, or cached but stale
  int64_t partitions = 0;          // sum of partition counts over batches
  int64_t build_rows = 0;          // build-side rows across batches
  int64_t max_partition_rows = 0;  // sum over batches of largest partition
  int64_t probe_rows = 0;          // probe-side rows across batches
};
PartitionedJoinTelemetry GetPartitionedJoinTelemetry();

/// Copies the tuples of `in` satisfying `predicate` into `*out`.
void Select(const Relation& in, const std::function<bool(const Tuple&)>& predicate,
            Relation* out);

/// Projects `in` onto `columns` (duplicates removed by Relation).
void Project(const Relation& in, const std::vector<int>& columns,
             Relation* out);

/// Inserts into `*out` the tuples of `a` that are not in `b` (the
/// semi-naive delta step). `a` and `b` must have equal arity.
void Difference(const Relation& a, const Relation& b, Relation* out);

/// True when `a` and `b` contain exactly the same tuples.
bool SameTuples(const Relation& a, const Relation& b);

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_OPS_H_
