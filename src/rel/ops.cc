#include "rel/ops.h"

#include <algorithm>

#include "common/logging.h"

namespace chainsplit {

void HashJoin(const Relation& left, const Relation& right,
              const std::vector<JoinKey>& keys,
              const std::vector<int>& output_columns, Relation* out) {
  const int left_arity = left.arity();
  Tuple combined(left_arity + right.arity());
  Tuple result(output_columns.size());

  auto emit = [&](const Tuple& l, const Tuple& r) {
    std::copy(l.begin(), l.end(), combined.begin());
    std::copy(r.begin(), r.end(), combined.begin() + left_arity);
    for (size_t i = 0; i < output_columns.size(); ++i) {
      result[i] = combined[output_columns[i]];
    }
    out->Insert(result);
  };

  if (keys.empty()) {
    // Cross product.
    for (int64_t i = 0; i < left.num_rows(); ++i) {
      for (int64_t j = 0; j < right.num_rows(); ++j) {
        emit(left.row(i), right.row(j));
      }
    }
    return;
  }

  std::vector<int> right_columns;
  right_columns.reserve(keys.size());
  for (const JoinKey& k : keys) right_columns.push_back(k.right_column);
  // Probe requires sorted columns; sort keys jointly so left/right stay
  // aligned.
  std::vector<JoinKey> sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end(),
            [](const JoinKey& a, const JoinKey& b) {
              return a.right_column < b.right_column;
            });
  right_columns.clear();
  for (const JoinKey& k : sorted_keys) right_columns.push_back(k.right_column);

  Tuple key(sorted_keys.size());
  for (int64_t i = 0; i < left.num_rows(); ++i) {
    const Tuple& l = left.row(i);
    for (size_t k = 0; k < sorted_keys.size(); ++k) {
      key[k] = l[sorted_keys[k].left_column];
    }
    for (int64_t j : right.Probe(right_columns, key)) {
      emit(l, right.row(j));
    }
  }
}

void Select(const Relation& in,
            const std::function<bool(const Tuple&)>& predicate,
            Relation* out) {
  for (int64_t i = 0; i < in.num_rows(); ++i) {
    if (predicate(in.row(i))) out->Insert(in.row(i));
  }
}

void Project(const Relation& in, const std::vector<int>& columns,
             Relation* out) {
  Tuple result(columns.size());
  for (int64_t i = 0; i < in.num_rows(); ++i) {
    const Tuple& t = in.row(i);
    for (size_t c = 0; c < columns.size(); ++c) result[c] = t[columns[c]];
    out->Insert(result);
  }
}

void Difference(const Relation& a, const Relation& b, Relation* out) {
  CS_DCHECK(a.arity() == b.arity()) << "Difference arity mismatch";
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    if (!b.Contains(a.row(i))) out->Insert(a.row(i));
  }
}

bool SameTuples(const Relation& a, const Relation& b) {
  if (a.size() != b.size() || a.arity() != b.arity()) return false;
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    if (!b.Contains(a.row(i))) return false;
  }
  return true;
}

}  // namespace chainsplit
