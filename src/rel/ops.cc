#include "rel/ops.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace chainsplit {
namespace {

/// Probe-side rows required before HashJoin goes parallel. Below it
/// the join runs single-threaded, so small inputs (and unit tests)
/// never touch the pool.
std::atomic<int64_t> g_parallel_join_min_rows{16384};
std::atomic<int64_t> g_parallel_join_batches{0};
std::atomic<int> g_parallel_join_mode{
    static_cast<int>(ParallelJoinMode::kAuto)};

/// Build-side rows required before kAuto picks the partitioned path;
/// below it the per-partition tables are too small to beat one global
/// index and the contiguous path wins.
constexpr int64_t kMinPartitionedBuildRows = 2048;

/// Partitioned-path telemetry (see GetPartitionedJoinTelemetry).
std::atomic<int64_t> g_partitioned_batches{0};
std::atomic<int64_t> g_contiguous_batches{0};
std::atomic<int64_t> g_views_built{0};
std::atomic<int64_t> g_pview_hits{0};
std::atomic<int64_t> g_pview_misses{0};
std::atomic<int64_t> g_partitions{0};
std::atomic<int64_t> g_build_rows{0};
std::atomic<int64_t> g_max_partition_rows{0};
std::atomic<int64_t> g_probe_rows{0};

/// Builds one output row of the join and inserts it. `combined` and
/// `result` are caller-provided scratch to keep this allocation-free.
inline void EmitJoined(Relation::Row l, Relation::Row r, int left_arity,
                       const std::vector<int>& output_columns,
                       Tuple* combined, Tuple* result, Relation* out) {
  std::copy(l.begin(), l.end(), combined->begin());
  std::copy(r.begin(), r.end(), combined->begin() + left_arity);
  for (size_t i = 0; i < output_columns.size(); ++i) {
    (*result)[i] = (*combined)[output_columns[i]];
  }
  out->Insert(*result);
}

/// The sequential probe loop over left rows [begin, end).
void ProbeRange(const Relation& left, const Relation& right,
                const JoinSpec& spec, const std::vector<int>& output_columns,
                int64_t begin, int64_t end,
                Relation::ProbeCounters* counters, Relation* out) {
  const int left_arity = left.arity();
  Tuple combined(left_arity + right.arity());
  Tuple result(output_columns.size());
  Tuple key(spec.keys.size());
  for (int64_t i = begin; i < end; ++i) {
    Relation::Row l = left.row(i);
    for (size_t k = 0; k < spec.keys.size(); ++k) {
      key[k] = l[spec.keys[k].left_column];
    }
    right.ProbeEachShared(spec.right_columns, key.data(), counters,
                          [&](int64_t j) {
                            EmitJoined(l, right.row(j), left_arity,
                                       output_columns, &combined, &result,
                                       out);
                          });
  }
}

/// PR 1 parallel path, kept as the small-build-side fallback and the
/// benchmark baseline: contiguous probe chunks with private outputs
/// merged in chunk order against one global build index.
void ContiguousParallelJoin(const Relation& left, const Relation& right,
                            const JoinSpec& spec,
                            const std::vector<int>& output_columns,
                            Relation* out, ThreadPool* pool) {
  const int64_t n = left.num_rows();
  const int64_t chunks =
      std::min<int64_t>(pool->size(), std::max<int64_t>(1, n / 1024));
  const int64_t chunk = (n + chunks - 1) / chunks;
  std::vector<Relation> partials;
  std::vector<Relation::ProbeCounters> counters(static_cast<size_t>(chunks));
  partials.reserve(static_cast<size_t>(chunks));
  for (int64_t c = 0; c < chunks; ++c) {
    partials.emplace_back(static_cast<int>(output_columns.size()));
  }
  ThreadPool::WorkGroup group(pool);
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t b = c * chunk;
    const int64_t e = std::min(n, b + chunk);
    if (b >= e) break;
    group.Submit(
        [&, c, b, e] {
          ProbeRange(left, right, spec, output_columns, b, e, &counters[c],
                     &partials[c]);
        },
        static_cast<int>(c));
  }
  group.Wait();
  g_parallel_join_batches.fetch_add(1, std::memory_order_relaxed);
  g_contiguous_batches.fetch_add(1, std::memory_order_relaxed);
  for (int64_t c = 0; c < chunks; ++c) {
    right.MergeProbeCounters(counters[c]);
    out->UnionWith(partials[c]);
  }
}

/// Power-of-two partition count: at least the worker count (so every
/// worker owns a partition), doubled once to smooth key skew, halved
/// while partitions would fall under ~256 build rows.
int ChoosePartitionCount(int workers, int64_t build_rows) {
  int p = 1;
  while (p < workers) p <<= 1;
  p = std::min(p * 2, PartitionedView::kMaxPartitions);
  while (p > 2 && build_rows > 0 && build_rows / p < 256) p >>= 1;
  return p;
}

/// The topology-aware path: radix-partition both sides on the join-key
/// hash, build one private hash table per partition (on the worker
/// that probes it — stable hint p, NUMA first-touch), probe each
/// partition independently, then replay the buffered matches in
/// probe-row order so the output is byte-identical to the serial loop.
void PartitionedParallelJoin(const Relation& left, const Relation& right,
                             const JoinSpec& spec,
                             const std::vector<int>& output_columns,
                             Relation* out, ThreadPool* pool) {
  const int workers = pool->size();
  const int P = ChoosePartitionCount(workers, right.num_rows());

  // Build side: reuse the cached view when the relation hasn't moved
  // (the fixpoint evaluators join against the same stable EDB relation
  // every iteration); rebuild otherwise. The shared_ptr is held across
  // the whole join, so a concurrent eviction or same-key replacement
  // in the relation's view LRU cannot destroy the view under us.
  std::shared_ptr<PartitionedView> view =
      right.FindPartitionedView(spec.right_columns, P);
  if (view == nullptr || view->stale(right)) {
    g_pview_misses.fetch_add(1, std::memory_order_relaxed);
    auto fresh =
        std::make_unique<PartitionedView>(spec.right_columns, P);
    fresh->AssignRows(right);
    {
      ThreadPool::WorkGroup build_group(pool);
      for (int p = 0; p < P; ++p) {
        PartitionedView* raw = fresh.get();
        build_group.Submit([raw, &right, p] { raw->BuildPartition(right, p); },
                           p);
      }
      build_group.Wait();
    }
    fresh->Finish(right);
    view = right.CachePartitionedView(std::move(fresh));
    g_views_built.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_pview_hits.fetch_add(1, std::memory_order_relaxed);
  }

  // Probe side: hash every left row's key once (parallel, contiguous
  // ranges), then scatter row ids into per-partition lists (ascending
  // row order — the merge depends on it).
  const int64_t n = left.num_rows();
  const size_t key_width = spec.keys.size();
  std::vector<uint8_t> part_of(static_cast<size_t>(n));
  std::vector<size_t> hash_of(static_cast<size_t>(n));
  pool->ParallelFor(0, n, 4096, [&](int64_t b, int64_t e) {
    TermId key[16];
    for (int64_t i = b; i < e; ++i) {
      Relation::Row l = left.row(i);
      for (size_t k = 0; k < key_width; ++k) {
        key[k] = l[spec.keys[k].left_column];
      }
      const size_t h = PartitionedView::KeyHash(key, key_width);
      hash_of[static_cast<size_t>(i)] = h;
      part_of[static_cast<size_t>(i)] =
          static_cast<uint8_t>(view->PartitionOfHash(h));
    }
  });
  std::vector<std::vector<uint32_t>> rows_by_part(static_cast<size_t>(P));
  {
    std::vector<int64_t> counts(static_cast<size_t>(P), 0);
    for (int64_t i = 0; i < n; ++i) ++counts[part_of[static_cast<size_t>(i)]];
    for (int p = 0; p < P; ++p) {
      rows_by_part[static_cast<size_t>(p)].reserve(
          static_cast<size_t>(counts[static_cast<size_t>(p)]));
    }
    for (int64_t i = 0; i < n; ++i) {
      rows_by_part[part_of[static_cast<size_t>(i)]].push_back(
          static_cast<uint32_t>(i));
    }
  }

  // Per-partition probe into private match buffers. Worker w keeps
  // getting the partitions hinted at it, so a partition's build table
  // stays hot in one core's cache across joins.
  struct PartProbe {
    std::vector<TermId> buf;            // projected tuples, back to back
    std::vector<uint32_t> match_counts;  // matches per probed left row
    Relation::ProbeCounters counters;
  };
  std::vector<PartProbe> probes(static_cast<size_t>(P));
  const int left_arity = left.arity();
  const size_t out_width = output_columns.size();
  {
    ThreadPool::WorkGroup probe_group(pool);
    for (int p = 0; p < P; ++p) {
      probe_group.Submit(
          [&, p] {
            PartProbe& mine = probes[static_cast<size_t>(p)];
            const std::vector<uint32_t>& rows =
                rows_by_part[static_cast<size_t>(p)];
            mine.match_counts.reserve(rows.size());
            Tuple key(key_width);
            for (uint32_t r : rows) {
              Relation::Row l = left.row(static_cast<int64_t>(r));
              for (size_t k = 0; k < key_width; ++k) {
                key[k] = l[spec.keys[k].left_column];
              }
              uint32_t matches = 0;
              view->ProbeEachHashed(
                  right, p, key.data(), hash_of[r], &mine.counters,
                  [&](int64_t j) {
                    Relation::Row rr = right.row(j);
                    for (size_t c = 0; c < out_width; ++c) {
                      const int col = output_columns[c];
                      mine.buf.push_back(col < left_arity
                                             ? l[col]
                                             : rr[col - left_arity]);
                    }
                    ++matches;
                  });
              mine.match_counts.push_back(matches);
            }
          },
          p);
    }
    probe_group.Wait();
  }

  // Deterministic merge: replay matches in left-row order. Each
  // partition's buffers are already in ascending left-row order, so
  // one cursor per partition suffices and every tuple is inserted in
  // exactly the order the serial loop would have produced it.
  std::vector<size_t> row_cursor(static_cast<size_t>(P), 0);
  std::vector<size_t> buf_cursor(static_cast<size_t>(P), 0);
  for (int64_t i = 0; i < n; ++i) {
    const size_t p = part_of[static_cast<size_t>(i)];
    PartProbe& mine = probes[p];
    const uint32_t matches = mine.match_counts[row_cursor[p]++];
    for (uint32_t m = 0; m < matches; ++m) {
      out->Insert(Relation::Row(mine.buf.data() + buf_cursor[p],
                                static_cast<int>(out_width)));
      buf_cursor[p] += out_width;
    }
  }

  for (int p = 0; p < P; ++p) {
    right.MergeProbeCounters(probes[static_cast<size_t>(p)].counters);
  }
  const PartitionedView::SkewStats skew = view->skew();
  g_parallel_join_batches.fetch_add(1, std::memory_order_relaxed);
  g_partitioned_batches.fetch_add(1, std::memory_order_relaxed);
  g_partitions.fetch_add(P, std::memory_order_relaxed);
  g_build_rows.fetch_add(skew.total_rows, std::memory_order_relaxed);
  g_max_partition_rows.fetch_add(skew.max_rows, std::memory_order_relaxed);
  g_probe_rows.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

JoinSpec::JoinSpec(std::vector<JoinKey> join_keys)
    : keys(std::move(join_keys)) {
  std::sort(keys.begin(), keys.end(), [](const JoinKey& a, const JoinKey& b) {
    return a.right_column < b.right_column;
  });
  right_columns.reserve(keys.size());
  for (const JoinKey& k : keys) right_columns.push_back(k.right_column);
}

int64_t SetParallelJoinMinRows(int64_t min_rows) {
  return g_parallel_join_min_rows.exchange(min_rows);
}

int64_t ParallelJoinBatches() {
  return g_parallel_join_batches.load(std::memory_order_relaxed);
}

ParallelJoinMode SetParallelJoinMode(ParallelJoinMode mode) {
  return static_cast<ParallelJoinMode>(
      g_parallel_join_mode.exchange(static_cast<int>(mode)));
}

PartitionedJoinTelemetry GetPartitionedJoinTelemetry() {
  PartitionedJoinTelemetry t;
  t.batches = g_partitioned_batches.load(std::memory_order_relaxed);
  t.contiguous_batches = g_contiguous_batches.load(std::memory_order_relaxed);
  t.views_built = g_views_built.load(std::memory_order_relaxed);
  t.view_hits = g_pview_hits.load(std::memory_order_relaxed);
  t.view_misses = g_pview_misses.load(std::memory_order_relaxed);
  t.partitions = g_partitions.load(std::memory_order_relaxed);
  t.build_rows = g_build_rows.load(std::memory_order_relaxed);
  t.max_partition_rows =
      g_max_partition_rows.load(std::memory_order_relaxed);
  t.probe_rows = g_probe_rows.load(std::memory_order_relaxed);
  return t;
}

void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out) {
  HashJoin(left, right, spec, output_columns, out, &ThreadPool::Shared());
}

void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out, ThreadPool* pool) {
  CS_DCHECK(out != &left && out != &right)
      << "HashJoin output must be a distinct relation";
  if (spec.keys.empty()) {
    // Cross product.
    const int left_arity = left.arity();
    Tuple combined(left_arity + right.arity());
    Tuple result(output_columns.size());
    for (int64_t i = 0; i < left.num_rows(); ++i) {
      for (int64_t j = 0; j < right.num_rows(); ++j) {
        EmitJoined(left.row(i), right.row(j), left_arity, output_columns,
                   &combined, &result, out);
      }
    }
    return;
  }

  const int64_t n = left.num_rows();
  const int64_t min_rows =
      g_parallel_join_min_rows.load(std::memory_order_relaxed);
  const auto mode = static_cast<ParallelJoinMode>(
      g_parallel_join_mode.load(std::memory_order_relaxed));
  const bool parallel_ok = pool->size() > 1 && n >= min_rows &&
                           mode != ParallelJoinMode::kSerial;

  if (parallel_ok) {
    const bool partitioned =
        mode == ParallelJoinMode::kPartitioned ||
        (mode == ParallelJoinMode::kAuto &&
         right.num_rows() >= kMinPartitionedBuildRows);
    if (partitioned) {
      PartitionedParallelJoin(left, right, spec, output_columns, out, pool);
    } else {
      right.EnsureIndex(spec.right_columns);
      ContiguousParallelJoin(left, right, spec, output_columns, out, pool);
    }
    return;
  }

  right.EnsureIndex(spec.right_columns);
  Relation::ProbeCounters counters;
  ProbeRange(left, right, spec, output_columns, 0, n, &counters, out);
  right.MergeProbeCounters(counters);
}

void HashJoin(const Relation& left, const Relation& right,
              const std::vector<JoinKey>& keys,
              const std::vector<int>& output_columns, Relation* out) {
  HashJoin(left, right, JoinSpec(keys), output_columns, out);
}

void Select(const Relation& in,
            const std::function<bool(const Tuple&)>& predicate,
            Relation* out) {
  Tuple scratch(in.arity());
  for (int64_t i = 0; i < in.num_rows(); ++i) {
    Relation::Row row = in.row(i);
    scratch.assign(row.begin(), row.end());
    if (predicate(scratch)) out->Insert(row);
  }
}

void Project(const Relation& in, const std::vector<int>& columns,
             Relation* out) {
  Tuple result(columns.size());
  for (int64_t i = 0; i < in.num_rows(); ++i) {
    Relation::Row t = in.row(i);
    for (size_t c = 0; c < columns.size(); ++c) result[c] = t[columns[c]];
    out->Insert(result);
  }
}

void Difference(const Relation& a, const Relation& b, Relation* out) {
  CS_DCHECK(a.arity() == b.arity()) << "Difference arity mismatch";
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    if (!b.Contains(a.row(i))) out->Insert(a.row(i));
  }
}

bool SameTuples(const Relation& a, const Relation& b) {
  if (a.size() != b.size() || a.arity() != b.arity()) return false;
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    if (!b.Contains(a.row(i))) return false;
  }
  return true;
}

}  // namespace chainsplit
