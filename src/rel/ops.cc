#include "rel/ops.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace chainsplit {
namespace {

/// Probe-side rows required before HashJoin partitions across the
/// shared pool. Below it the join runs single-threaded, so small
/// inputs (and unit tests) never touch the pool.
std::atomic<int64_t> g_parallel_join_min_rows{16384};
std::atomic<int64_t> g_parallel_join_batches{0};

/// Builds one output row of the join and inserts it. `combined` and
/// `result` are caller-provided scratch to keep this allocation-free.
inline void EmitJoined(Relation::Row l, Relation::Row r, int left_arity,
                       const std::vector<int>& output_columns,
                       Tuple* combined, Tuple* result, Relation* out) {
  std::copy(l.begin(), l.end(), combined->begin());
  std::copy(r.begin(), r.end(), combined->begin() + left_arity);
  for (size_t i = 0; i < output_columns.size(); ++i) {
    (*result)[i] = (*combined)[output_columns[i]];
  }
  out->Insert(*result);
}

/// The sequential probe loop over left rows [begin, end).
void ProbeRange(const Relation& left, const Relation& right,
                const JoinSpec& spec, const std::vector<int>& output_columns,
                int64_t begin, int64_t end,
                Relation::ProbeCounters* counters, Relation* out) {
  const int left_arity = left.arity();
  Tuple combined(left_arity + right.arity());
  Tuple result(output_columns.size());
  Tuple key(spec.keys.size());
  for (int64_t i = begin; i < end; ++i) {
    Relation::Row l = left.row(i);
    for (size_t k = 0; k < spec.keys.size(); ++k) {
      key[k] = l[spec.keys[k].left_column];
    }
    right.ProbeEachShared(spec.right_columns, key.data(), counters,
                          [&](int64_t j) {
                            EmitJoined(l, right.row(j), left_arity,
                                       output_columns, &combined, &result,
                                       out);
                          });
  }
}

}  // namespace

JoinSpec::JoinSpec(std::vector<JoinKey> join_keys)
    : keys(std::move(join_keys)) {
  std::sort(keys.begin(), keys.end(), [](const JoinKey& a, const JoinKey& b) {
    return a.right_column < b.right_column;
  });
  right_columns.reserve(keys.size());
  for (const JoinKey& k : keys) right_columns.push_back(k.right_column);
}

int64_t SetParallelJoinMinRows(int64_t min_rows) {
  return g_parallel_join_min_rows.exchange(min_rows);
}

int64_t ParallelJoinBatches() {
  return g_parallel_join_batches.load(std::memory_order_relaxed);
}

void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out) {
  HashJoin(left, right, spec, output_columns, out, &ThreadPool::Shared());
}

void HashJoin(const Relation& left, const Relation& right,
              const JoinSpec& spec, const std::vector<int>& output_columns,
              Relation* out, ThreadPool* pool) {
  CS_DCHECK(out != &left && out != &right)
      << "HashJoin output must be a distinct relation";
  if (spec.keys.empty()) {
    // Cross product.
    const int left_arity = left.arity();
    Tuple combined(left_arity + right.arity());
    Tuple result(output_columns.size());
    for (int64_t i = 0; i < left.num_rows(); ++i) {
      for (int64_t j = 0; j < right.num_rows(); ++j) {
        EmitJoined(left.row(i), right.row(j), left_arity, output_columns,
                   &combined, &result, out);
      }
    }
    return;
  }

  right.EnsureIndex(spec.right_columns);

  const int64_t n = left.num_rows();
  const int64_t min_rows =
      g_parallel_join_min_rows.load(std::memory_order_relaxed);
  if (pool->size() > 1 && n >= min_rows) {
    // Partition the probe side into contiguous chunks with private
    // outputs; merging in chunk order reproduces the sequential
    // first-occurrence order exactly.
    const int64_t chunks =
        std::min<int64_t>(pool->size(), std::max<int64_t>(1, n / 1024));
    const int64_t chunk = (n + chunks - 1) / chunks;
    std::vector<Relation> partials;
    std::vector<Relation::ProbeCounters> counters(
        static_cast<size_t>(chunks));
    partials.reserve(static_cast<size_t>(chunks));
    for (int64_t c = 0; c < chunks; ++c) {
      partials.emplace_back(static_cast<int>(output_columns.size()));
    }
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t b = c * chunk;
      const int64_t e = std::min(n, b + chunk);
      if (b >= e) break;
      pool->Submit([&, c, b, e] {
        ProbeRange(left, right, spec, output_columns, b, e, &counters[c],
                   &partials[c]);
      });
    }
    pool->Wait();
    g_parallel_join_batches.fetch_add(1, std::memory_order_relaxed);
    for (int64_t c = 0; c < chunks; ++c) {
      right.MergeProbeCounters(counters[c]);
      out->UnionWith(partials[c]);
    }
    return;
  }

  Relation::ProbeCounters counters;
  ProbeRange(left, right, spec, output_columns, 0, n, &counters, out);
  right.MergeProbeCounters(counters);
}

void HashJoin(const Relation& left, const Relation& right,
              const std::vector<JoinKey>& keys,
              const std::vector<int>& output_columns, Relation* out) {
  HashJoin(left, right, JoinSpec(keys), output_columns, out);
}

void Select(const Relation& in,
            const std::function<bool(const Tuple&)>& predicate,
            Relation* out) {
  Tuple scratch(in.arity());
  for (int64_t i = 0; i < in.num_rows(); ++i) {
    Relation::Row row = in.row(i);
    scratch.assign(row.begin(), row.end());
    if (predicate(scratch)) out->Insert(row);
  }
}

void Project(const Relation& in, const std::vector<int>& columns,
             Relation* out) {
  Tuple result(columns.size());
  for (int64_t i = 0; i < in.num_rows(); ++i) {
    Relation::Row t = in.row(i);
    for (size_t c = 0; c < columns.size(); ++c) result[c] = t[columns[c]];
    out->Insert(result);
  }
}

void Difference(const Relation& a, const Relation& b, Relation* out) {
  CS_DCHECK(a.arity() == b.arity()) << "Difference arity mismatch";
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    if (!b.Contains(a.row(i))) out->Insert(a.row(i));
  }
}

bool SameTuples(const Relation& a, const Relation& b) {
  if (a.size() != b.size() || a.arity() != b.arity()) return false;
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    if (!b.Contains(a.row(i))) return false;
  }
  return true;
}

}  // namespace chainsplit
