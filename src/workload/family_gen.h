#ifndef CHAINSPLIT_WORKLOAD_FAMILY_GEN_H_
#define CHAINSPLIT_WORKLOAD_FAMILY_GEN_H_

#include <cstdint>
#include <vector>

#include "rel/catalog.h"

namespace chainsplit {

/// Generator for the `sg` / `scsg` EDB of Examples 1.1 and 1.2:
/// `parent(Child, Parent)`, `sibling(X, Y)`, `country(Person, Country)`
/// and the materialized `same_country(X, Y)` relation whose join
/// expansion ratio (persons per country) drives the efficiency-based
/// chain-split decision.
struct FamilyOptions {
  int num_families = 8;    // independent ancestor trees
  int depth = 5;           // generations per tree
  int fanout = 2;          // children per person
  int num_countries = 4;   // same_country fan-out = persons/countries
  bool materialize_same_country = true;
  uint64_t seed = 42;
};

struct FamilyData {
  std::vector<TermId> persons;
  /// A bottom-generation person to use as the query constant.
  TermId query_person = kNullTerm;
  int64_t num_persons = 0;
  int64_t num_parent_facts = 0;
  int64_t num_sibling_facts = 0;
  int64_t num_same_country_facts = 0;
};

/// Populates `*db` with a family EDB. Relation schemas:
///   parent(Child, Parent), sibling(X, Y) (symmetric),
///   country(Person, Country), same_country(X, Y) (symmetric,
///   reflexive) when materialized.
FamilyData GenerateFamily(Database* db, const FamilyOptions& options);

/// The paper's `sg` program (rules (1.1)-(1.2)) as source text.
const char* SgProgramSource();

/// The paper's `scsg` program (rules (1.5)-(1.7) style: same-country
/// same-generation) as source text, over the materialized
/// `same_country` relation.
const char* ScsgProgramSource();

}  // namespace chainsplit

#endif  // CHAINSPLIT_WORKLOAD_FAMILY_GEN_H_
