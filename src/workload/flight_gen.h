#ifndef CHAINSPLIT_WORKLOAD_FLIGHT_GEN_H_
#define CHAINSPLIT_WORKLOAD_FLIGHT_GEN_H_

#include <cstdint>
#include <vector>

#include "rel/catalog.h"

namespace chainsplit {

/// Generator for the `travel` EDB of §3.3:
/// `flight(Fno, DepCity, ArrCity, Fare)`. (The paper's schema also
/// carries departure/arrival times; they are orthogonal to the
/// chain-split and constraint-pushing behaviour — the compiled chain is
/// flight/sum/cons either way — so the reproduction drops them; see
/// EXPERIMENTS.md E4.)
struct FlightOptions {
  int num_cities = 20;
  int num_flights = 200;
  int64_t min_fare = 40;
  int64_t max_fare = 240;
  uint64_t seed = 7;
};

struct FlightData {
  std::vector<TermId> cities;
  TermId origin = kNullTerm;       // suggested query departure city
  TermId destination = kNullTerm;  // suggested query arrival city
  int64_t num_flights = 0;
};

/// Populates `*db` with a random flight network. Cities are symbols
/// `city0..`, flight numbers integers; fares uniform in
/// [min_fare, max_fare].
FlightData GenerateFlights(Database* db, const FlightOptions& options);

/// The paper's `travel` recursion as source text: a trip is a direct
/// flight, or a flight followed by a trip, accumulating the flight-
/// number list (via cons) and the total fare (via sum) — the compiled
/// chain with connected flight/sum/cons predicates of §3.3.
const char* TravelProgramSource();

}  // namespace chainsplit

#endif  // CHAINSPLIT_WORKLOAD_FLIGHT_GEN_H_
