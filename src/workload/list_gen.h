#ifndef CHAINSPLIT_WORKLOAD_LIST_GEN_H_
#define CHAINSPLIT_WORKLOAD_LIST_GEN_H_

#include <cstdint>
#include <vector>

#include "term/term.h"

namespace chainsplit {

/// Random integer sequences and list terms for the sorting and append
/// workloads of §4 (isort, qsort) and §2.2 (append).

/// `n` integers uniform in [min_value, max_value], deterministic in
/// `seed`.
std::vector<int64_t> RandomInts(int64_t n, int64_t min_value,
                                int64_t max_value, uint64_t seed);

/// A random integer list term of length `n`.
TermId RandomIntList(TermPool& pool, int64_t n, int64_t min_value,
                     int64_t max_value, uint64_t seed);

/// The paper's nested linear recursion isort (Example 4.1, rules
/// (4.1)-(4.5)) as source text.
const char* IsortProgramSource();

/// The paper's nonlinear recursion qsort (Example 4.2, rules
/// (4.16)-(4.30)) as source text.
const char* QsortProgramSource();

/// The paper's append recursion (rules (1.13)-(1.14)).
const char* AppendProgramSource();

}  // namespace chainsplit

#endif  // CHAINSPLIT_WORKLOAD_LIST_GEN_H_
