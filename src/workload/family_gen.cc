#include "workload/family_gen.h"

#include <random>
#include <string>
#include <vector>

#include "common/strings.h"

namespace chainsplit {

FamilyData GenerateFamily(Database* db, const FamilyOptions& options) {
  TermPool& pool = db->pool();
  Program& program = db->program();
  PredId parent = program.InternPred("parent", 2);
  PredId sibling = program.InternPred("sibling", 2);
  PredId country = program.InternPred("country", 2);
  PredId same_country = program.InternPred("same_country", 2);

  std::mt19937_64 rng(options.seed);
  FamilyData data;
  int person_counter = 0;

  auto new_person = [&]() {
    TermId p = pool.MakeSymbol(StrCat("p", person_counter++));
    data.persons.push_back(p);
    return p;
  };

  std::vector<std::vector<TermId>> by_country(options.num_countries);
  auto assign_country = [&](TermId person) {
    int c = static_cast<int>(rng() % options.num_countries);
    db->InsertFact(country, {person, pool.MakeSymbol(StrCat("c", c))});
    by_country[c].push_back(person);
  };

  // Each family is a `fanout`-ary tree of `depth` generations; facts
  // are parent(child, parent) going up, matching sg's rule shape.
  std::vector<TermId> bottom_generation;
  for (int f = 0; f < options.num_families; ++f) {
    std::vector<TermId> generation;
    TermId root = new_person();
    assign_country(root);
    generation.push_back(root);
    for (int d = 1; d < options.depth; ++d) {
      std::vector<TermId> next;
      for (TermId anc : generation) {
        std::vector<TermId> kids;
        for (int k = 0; k < options.fanout; ++k) {
          TermId child = new_person();
          assign_country(child);
          db->InsertFact(parent, {child, anc});
          ++data.num_parent_facts;
          kids.push_back(child);
          next.push_back(child);
        }
        for (TermId a : kids) {
          for (TermId b : kids) {
            if (a != b) {
              db->InsertFact(sibling, {a, b});
              ++data.num_sibling_facts;
            }
          }
        }
      }
      generation = std::move(next);
    }
    if (f == 0) bottom_generation = generation;
  }
  if (!bottom_generation.empty()) {
    data.query_person = bottom_generation.front();
  } else if (!data.persons.empty()) {
    data.query_person = data.persons.front();
  }
  data.num_persons = static_cast<int64_t>(data.persons.size());

  if (options.materialize_same_country) {
    for (const auto& group : by_country) {
      for (TermId a : group) {
        for (TermId b : group) {
          db->InsertFact(same_country, {a, b});
          ++data.num_same_country_facts;
        }
      }
    }
  }
  return data;
}

const char* SgProgramSource() {
  return R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)";
}

const char* ScsgProgramSource() {
  return R"(
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
)";
}

}  // namespace chainsplit
