#include "workload/graph_gen.h"

#include <random>

#include "common/strings.h"

namespace chainsplit {

GraphData GenerateGraph(Database* db, std::string_view edge_pred_name,
                        const GraphOptions& options) {
  TermPool& pool = db->pool();
  PredId edge = db->program().InternPred(edge_pred_name, 2);
  std::mt19937_64 rng(options.seed);

  GraphData data;
  data.nodes.reserve(options.num_nodes);
  for (int i = 0; i < options.num_nodes; ++i) {
    data.nodes.push_back(pool.MakeSymbol(StrCat(options.node_prefix, i)));
  }
  std::uniform_int_distribution<int> node_dist(0, options.num_nodes - 1);
  for (int e = 0; e < options.num_edges; ++e) {
    int a = node_dist(rng);
    int b = node_dist(rng);
    if (a == b) b = (b + 1) % options.num_nodes;
    if (options.acyclic && a > b) std::swap(a, b);
    if (db->InsertFact(edge, {data.nodes[a], data.nodes[b]})) {
      ++data.num_edges;
    }
  }
  return data;
}

GraphData GenerateChainGraph(Database* db, std::string_view edge_pred_name,
                             int num_nodes, std::string_view node_prefix) {
  TermPool& pool = db->pool();
  PredId edge = db->program().InternPred(edge_pred_name, 2);
  GraphData data;
  for (int i = 0; i < num_nodes; ++i) {
    data.nodes.push_back(pool.MakeSymbol(StrCat(node_prefix, i)));
  }
  for (int i = 0; i + 1 < num_nodes; ++i) {
    if (db->InsertFact(edge, {data.nodes[i], data.nodes[i + 1]})) {
      ++data.num_edges;
    }
  }
  return data;
}

}  // namespace chainsplit
