#ifndef CHAINSPLIT_WORKLOAD_GRAPH_GEN_H_
#define CHAINSPLIT_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "rel/catalog.h"

namespace chainsplit {

/// Random digraph generator for the transitive-closure and
/// merged-chain experiments (E8) and for cyclic-data tests.
struct GraphOptions {
  int num_nodes = 100;
  int num_edges = 300;
  /// When true, edges only go from lower to higher node index (DAG).
  bool acyclic = false;
  uint64_t seed = 17;
  /// Prefix for node symbols ("n" -> n0, n1, ...). Distinct prefixes
  /// keep two graphs' node sets disjoint in one database.
  std::string_view node_prefix = "n";
};

struct GraphData {
  std::vector<TermId> nodes;
  int64_t num_edges = 0;
};

/// Populates relation `edge_pred_name`(From, To) in `*db`.
GraphData GenerateGraph(Database* db, std::string_view edge_pred_name,
                        const GraphOptions& options);

/// A simple directed chain 0 -> 1 -> ... -> n-1 (worst-case TC depth).
GraphData GenerateChainGraph(Database* db, std::string_view edge_pred_name,
                             int num_nodes, std::string_view node_prefix);

}  // namespace chainsplit

#endif  // CHAINSPLIT_WORKLOAD_GRAPH_GEN_H_
