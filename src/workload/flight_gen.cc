#include "workload/flight_gen.h"

#include <random>

#include "common/strings.h"

namespace chainsplit {

FlightData GenerateFlights(Database* db, const FlightOptions& options) {
  TermPool& pool = db->pool();
  PredId flight = db->program().InternPred("flight", 4);
  std::mt19937_64 rng(options.seed);

  FlightData data;
  data.cities.reserve(options.num_cities);
  for (int c = 0; c < options.num_cities; ++c) {
    data.cities.push_back(pool.MakeSymbol(StrCat("city", c)));
  }
  std::uniform_int_distribution<int> city_dist(0, options.num_cities - 1);
  std::uniform_int_distribution<int64_t> fare_dist(options.min_fare,
                                                   options.max_fare);
  for (int f = 0; f < options.num_flights; ++f) {
    int dep = city_dist(rng);
    int arr = city_dist(rng);
    if (arr == dep) arr = (arr + 1) % options.num_cities;
    db->InsertFact(flight, {pool.MakeInt(f), data.cities[dep],
                            data.cities[arr], pool.MakeInt(fare_dist(rng))});
    ++data.num_flights;
  }
  data.origin = data.cities[0];
  data.destination = data.cities[options.num_cities - 1];
  return data;
}

const char* TravelProgramSource() {
  return R"(
travel(L, D, A, F) :- flight(Fno, D, A, F), cons(Fno, [], L).
travel(L, D, A, F) :- flight(Fno, D, A1, F1), travel(L1, A1, A, F2),
                      F is F1 + F2, cons(Fno, L1, L).
)";
}

}  // namespace chainsplit
