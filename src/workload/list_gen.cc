#include "workload/list_gen.h"

#include <random>

#include "term/list_utils.h"

namespace chainsplit {

std::vector<int64_t> RandomInts(int64_t n, int64_t min_value,
                                int64_t max_value, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(min_value, max_value);
  std::vector<int64_t> values;
  values.reserve(n);
  for (int64_t i = 0; i < n; ++i) values.push_back(dist(rng));
  return values;
}

TermId RandomIntList(TermPool& pool, int64_t n, int64_t min_value,
                     int64_t max_value, uint64_t seed) {
  std::vector<int64_t> values = RandomInts(n, min_value, max_value, seed);
  return MakeIntList(pool, values);
}

const char* IsortProgramSource() {
  return R"(
isort([X|Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
isort([], []).
insert(X, [], [X]).
insert(X, [Y|Ys], [Y|Zs]) :- X > Y, insert(X, Ys, Zs).
insert(X, [Y|Ys], [X, Y|Ys]) :- X =< Y.
)";
}

const char* QsortProgramSource() {
  return R"(
qsort([X|Xs], Ys) :- partition(Xs, X, Littles, Bigs),
                     qsort(Littles, Ls), qsort(Bigs, Bs),
                     append(Ls, [X|Bs], Ys).
qsort([], []).
partition([X|Xs], Y, [X|Ls], Bs) :- X =< Y, partition(Xs, Y, Ls, Bs).
partition([X|Xs], Y, Ls, [X|Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
partition([], Y, [], []).
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
)";
}

const char* AppendProgramSource() {
  return R"(
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
)";
}

}  // namespace chainsplit
