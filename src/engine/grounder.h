#ifndef CHAINSPLIT_ENGINE_GROUNDER_H_
#define CHAINSPLIT_ENGINE_GROUNDER_H_

#include <functional>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "engine/builtins.h"
#include "rel/relation.h"

namespace chainsplit {

/// Bottom-up evaluation of one rule body against ground relations: the
/// join kernel shared by the naive, semi-naive and magic evaluators.
///
/// Rules must be *flat* (every atom argument is a variable or a ground
/// term) — the form produced by rule rectification (§1.2 / core/rectify)
/// — so a derived tuple is just the head's argument slots.

/// An atom argument: either a constant term or a slot (variable) index.
struct ArgPattern {
  bool is_slot = false;
  int slot = -1;
  TermId constant = kNullTerm;
};

/// A body literal compiled to slot form.
struct CompiledLiteral {
  PredId pred = kNullPred;
  BuiltinKind builtin = BuiltinKind::kNone;
  std::vector<ArgPattern> args;
};

/// A rule compiled for bottom-up evaluation, including a literal order
/// scheduled so every builtin is reached with an evaluable boundness
/// pattern. Compilation *fails with kNotFinitelyEvaluable* when no such
/// order exists — this is the engine-level manifestation of the paper's
/// finite-evaluability analysis (§2.2), and the reason functional
/// chains need chain-split before they can run bottom-up.
struct CompiledRule {
  Rule source;
  PredId head_pred = kNullPred;
  std::vector<ArgPattern> head_args;
  std::vector<CompiledLiteral> body;     // original body order
  std::vector<int> order;                // evaluation order (body indexes)
  std::vector<TermId> slot_vars;         // slot -> variable term
};

/// Resolves a predicate to its current relation (nullptr = empty).
using RelationLookup = std::function<const Relation*(PredId)>;

/// Estimates the tuples produced per binding when evaluating a
/// predicate under an adornment (its join expansion ratio, §2.1).
/// Plugged in by the planner from catalog statistics; the scheduler
/// uses it for access-path selection [13, 18]: among the evaluable
/// relation literals it picks the one with the smallest estimate.
using CardinalityEstimator =
    std::function<double(PredId, const std::string& adornment)>;

/// Work counters accumulated during rule evaluation; benchmarks report
/// these as machine-independent cost measures.
struct EvalCounters {
  int64_t tuples_considered = 0;  // relation tuples scanned or probed
  int64_t builtin_calls = 0;
  int64_t derivations = 0;        // head instantiations produced
  int64_t inserted = 0;           // new tuples after dedup

  void Add(const EvalCounters& o) {
    tuples_considered += o.tuples_considered;
    builtin_calls += o.builtin_calls;
    derivations += o.derivations;
    inserted += o.inserted;
  }
};

/// Compiles `rule` for bottom-up evaluation. When `first_literal` >= 0,
/// the schedule is forced to begin with that body literal (used by
/// semi-naive to start from the delta relation). Fails when the rule is
/// not flat, not range-restricted, or not finitely evaluable in any
/// order.
StatusOr<CompiledRule> CompileRule(const Program& program, const Rule& rule,
                                   int first_literal = -1,
                                   const CardinalityEstimator& estimator =
                                       nullptr);

/// Evaluates `rule` once against the relations provided by `rel_for`,
/// inserting derived head tuples into `*out`.
///
/// When `delta_literal` >= 0, that body literal reads from `*delta`
/// instead of its full relation (the semi-naive substitution). `pool`
/// may grow (builtins intern new terms).
Status EvaluateRule(TermPool& pool, const PredicateTable& preds,
                    const CompiledRule& rule, const RelationLookup& rel_for,
                    int delta_literal, const Relation* delta, Relation* out,
                    EvalCounters* counters);

}  // namespace chainsplit

#endif  // CHAINSPLIT_ENGINE_GROUNDER_H_
