#ifndef CHAINSPLIT_ENGINE_TOPDOWN_H_
#define CHAINSPLIT_ENGINE_TOPDOWN_H_

#include <functional>
#include <vector>

#include "ast/ast.h"
#include "common/deadline.h"
#include "common/status.h"
#include "rel/catalog.h"
#include "term/unify.h"

namespace chainsplit {

/// Options for the SLD evaluator.
struct TopDownOptions {
  /// Goal-stack depth cap; exceeded => kResourceExhausted. Functional
  /// recursions on well-founded arguments (shrinking lists) stay far
  /// below it; a runaway recursion trips it instead of overflowing.
  int64_t max_depth = 100000;
  /// Total goal expansions cap.
  int64_t max_steps = 200000000;
  /// Stop after this many solutions.
  int64_t max_solutions = 1000000000;

  /// Cooperative cancellation/deadline token, checked once per 1024
  /// goal expansions (a clock read per SLD step would dominate the
  /// resolution loop). Null = never cancelled.
  const CancelToken* cancel = nullptr;
};

struct TopDownStats {
  int64_t steps = 0;
  int64_t solutions = 0;
  int64_t deepest = 0;
};

/// Plain SLD resolution (top-down, leftmost selection, depth-first)
/// over an EvalDb: rules from the program, EDB facts from relations,
/// builtins evaluated natively.
///
/// This is the *reference evaluator* for functional recursions (§4 of
/// the paper): `isort`, `qsort`, `append` terminate top-down because
/// their recursion is well-founded on a shrinking list argument. It is
/// not tabled — queries over cyclic EDB data should use the bottom-up
/// evaluators; the caps in TopDownOptions turn accidental loops into
/// kResourceExhausted errors.
class TopDownEvaluator {
 public:
  explicit TopDownEvaluator(EvalDb* db,
                            TopDownOptions options = TopDownOptions());

  /// Proves `goals` left-to-right; invokes `on_solution` for every
  /// proof with the final substitution (resolve your variables of
  /// interest against it).
  Status Solve(const std::vector<Atom>& goals,
               const std::function<void(const Substitution&)>& on_solution);

  /// Convenience: all bindings of `vars` over the solutions of `goals`,
  /// deduplicated, in discovery order.
  StatusOr<std::vector<std::vector<TermId>>> Answers(
      const std::vector<Atom>& goals, const std::vector<TermId>& vars);

  const TopDownStats& stats() const { return stats_; }

 private:
  class Impl;

  EvalDb* db_;
  TopDownOptions options_;
  TopDownStats stats_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_ENGINE_TOPDOWN_H_
