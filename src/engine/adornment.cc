#include "engine/adornment.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/strings.h"
#include "engine/builtins.h"

namespace chainsplit {
namespace {

bool AllVarsBound(const TermPool& pool, TermId arg,
                  const std::vector<TermId>& bound) {
  if (pool.IsGround(arg)) return true;
  std::vector<TermId> vars;
  pool.CollectVariables(arg, &vars);
  for (TermId v : vars) {
    if (std::find(bound.begin(), bound.end(), v) == bound.end()) return false;
  }
  return true;
}

void AddVars(const TermPool& pool, const Atom& atom,
             std::vector<TermId>* bound) {
  std::vector<TermId> vars;
  CollectAtomVariables(pool, atom, &vars);
  for (TermId v : vars) {
    if (std::find(bound->begin(), bound->end(), v) == bound->end()) {
      bound->push_back(v);
    }
  }
}

std::string AdornedName(const PredicateTable& preds, PredId pred,
                        const std::string& adornment) {
  return StrCat(preds.name(pred), "__", adornment);
}

std::vector<const Rule*> RulesFor(const std::vector<Rule>& rules,
                                  PredId pred) {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules) {
    if (rule.head.pred == pred) out.push_back(&rule);
  }
  return out;
}

}  // namespace

std::string AtomAdornment(const TermPool& pool, const Atom& atom,
                          const std::vector<TermId>& bound) {
  std::string adornment;
  adornment.reserve(atom.args.size());
  for (TermId arg : atom.args) {
    adornment.push_back(AllVarsBound(pool, arg, bound) ? 'b' : 'f');
  }
  return adornment;
}

StatusOr<AdornedProgram> AdornProgram(Program* program,
                                      const std::vector<Rule>& rules,
                                      PredId query_pred,
                                      const std::string& adornment,
                                      const PropagationGate& gate) {
  TermPool& pool = program->pool();
  PredicateTable& preds = program->preds();
  if (static_cast<int>(adornment.size()) != preds.arity(query_pred)) {
    return InvalidArgumentError(
        StrCat("adornment ", adornment, " does not match arity of ",
               preds.Display(query_pred)));
  }
  auto is_idb = [&rules](PredId p) {
    for (const Rule& r : rules) {
      if (r.head.pred == p) return true;
    }
    return false;
  };
  if (!is_idb(query_pred)) {
    return InvalidArgumentError(StrCat("query predicate ",
                                       preds.Display(query_pred),
                                       " has no rules"));
  }

  AdornedProgram result;
  // Worklist of (original pred, adornment) call patterns to process.
  std::deque<std::pair<PredId, std::string>> worklist;
  std::set<std::pair<PredId, std::string>> seen;

  auto intern_adorned = [&](PredId pred,
                            const std::string& ad) -> PredId {
    PredId adorned =
        preds.Intern(AdornedName(preds, pred, ad), preds.arity(pred));
    result.info.emplace(adorned, AdornedPredInfo{pred, ad});
    if (seen.insert({pred, ad}).second) worklist.push_back({pred, ad});
    return adorned;
  };

  result.query_pred = intern_adorned(query_pred, adornment);

  while (!worklist.empty()) {
    auto [pred, ad] = worklist.front();
    worklist.pop_front();
    for (const Rule* rule : RulesFor(rules, pred)) {
      AdornedRule adorned;
      Rule& adorned_rule = adorned.rule;
      adorned_rule.head = rule->head;
      adorned_rule.head.pred = intern_adorned(pred, ad);

      // Variables bound by the call: those in 'b' head positions.
      std::vector<TermId> bound;
      for (size_t i = 0; i < rule->head.args.size(); ++i) {
        if (ad[i] == 'b') pool.CollectVariables(rule->head.args[i], &bound);
      }

      for (const Atom& literal : rule->body) {
        std::string lit_ad = AtomAdornment(pool, literal, bound);
        Atom adorned_literal = literal;
        BuiltinKind builtin = GetBuiltinKind(preds, literal.pred);
        bool propagate;
        if (builtin != BuiltinKind::kNone) {
          // A builtin propagates bindings only when it is finitely
          // evaluable in this mode (finiteness-based gating, §2.2).
          std::vector<bool> arg_bound(lit_ad.size());
          for (size_t i = 0; i < lit_ad.size(); ++i) {
            arg_bound[i] = lit_ad[i] == 'b';
          }
          if (builtin == BuiltinKind::kEq) {
            propagate = arg_bound[0] || arg_bound[1];
          } else {
            propagate = BuiltinModeEvaluable(builtin, arg_bound);
          }
        } else if (is_idb(literal.pred)) {
          adorned_literal.pred = intern_adorned(literal.pred, lit_ad);
          propagate = true;  // answers of the call bind its arguments
        } else {
          propagate = gate == nullptr || gate(literal, lit_ad);
        }
        adorned_rule.body.push_back(adorned_literal);
        adorned.propagates.push_back(propagate);
        if (propagate) AddVars(pool, literal, &bound);
      }
      result.rules.push_back(std::move(adorned));
    }
  }
  return result;
}

}  // namespace chainsplit
