#include "engine/magic.h"

#include <algorithm>

#include "common/strings.h"

namespace chainsplit {
namespace {

bool SharesVariable(const std::vector<TermId>& a,
                    const std::vector<TermId>& b) {
  for (TermId v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) return true;
  }
  return false;
}

void AddAll(const std::vector<TermId>& from, std::vector<TermId>* to) {
  for (TermId v : from) {
    if (std::find(to->begin(), to->end(), v) == to->end()) to->push_back(v);
  }
}

}  // namespace

StatusOr<MagicProgram> MagicTransform(Program* program,
                                      const AdornedProgram& adorned,
                                      const Atom& query) {
  TermPool& pool = program->pool();
  PredicateTable& preds = program->preds();
  MagicProgram magic;
  magic.answer_pred = adorned.query_pred;

  // Interns the magic predicate of an adorned predicate.
  auto magic_pred = [&](PredId adorned_pred) -> PredId {
    auto it = magic.magic_of.find(adorned_pred);
    if (it != magic.magic_of.end()) return it->second;
    const AdornedPredInfo& info = adorned.info.at(adorned_pred);
    int bound_count =
        static_cast<int>(std::count(info.adornment.begin(),
                                    info.adornment.end(), 'b'));
    PredId m = preds.Intern(StrCat("m_", preds.name(adorned_pred)),
                            bound_count);
    magic.magic_of.emplace(adorned_pred, m);
    return m;
  };

  // Magic literal m_p(bound args of `atom`) for adorned pred `atom.pred`.
  auto magic_literal = [&](const Atom& atom) -> Atom {
    const AdornedPredInfo& info = adorned.info.at(atom.pred);
    Atom m;
    m.pred = magic_pred(atom.pred);
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (info.adornment[i] == 'b') m.args.push_back(atom.args[i]);
    }
    return m;
  };

  for (const AdornedRule& ar : adorned.rules) {
    const Rule& rule = ar.rule;
    // Modified answer rule: guard the original body with the head's
    // magic literal.
    Rule answer_rule;
    answer_rule.head = rule.head;
    answer_rule.body.push_back(magic_literal(rule.head));
    for (const Atom& literal : rule.body) answer_rule.body.push_back(literal);
    magic.rules.push_back(std::move(answer_rule));

    // Variable sets per literal, computed once.
    std::vector<std::vector<TermId>> literal_vars(rule.body.size());
    for (size_t i = 0; i < rule.body.size(); ++i) {
      CollectAtomVariables(pool, rule.body[i], &literal_vars[i]);
    }

    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Atom& call = rule.body[i];
      if (adorned.info.find(call.pred) == adorned.info.end()) continue;
      const AdornedPredInfo& info = adorned.info.at(call.pred);

      Rule magic_rule;
      magic_rule.head = magic_literal(call);

      // Backward slice over propagating literals connected to the bound
      // arguments of the call.
      std::vector<TermId> needed;
      for (size_t a = 0; a < call.args.size(); ++a) {
        if (info.adornment[a] == 'b') {
          pool.CollectVariables(call.args[a], &needed);
        }
      }
      std::vector<bool> in_slice(i, false);
      for (size_t j = i; j-- > 0;) {
        if (!ar.propagates[j]) continue;
        if (SharesVariable(literal_vars[j], needed)) {
          in_slice[j] = true;
          AddAll(literal_vars[j], &needed);
        }
      }
      magic_rule.body.push_back(magic_literal(rule.head));
      for (size_t j = 0; j < i; ++j) {
        if (in_slice[j]) magic_rule.body.push_back(rule.body[j]);
      }
      magic.rules.push_back(std::move(magic_rule));
    }
  }

  // Seed: the magic fact of the query call.
  const AdornedPredInfo& qinfo = adorned.info.at(adorned.query_pred);
  Atom seed;
  seed.pred = magic_pred(adorned.query_pred);
  for (size_t i = 0; i < query.args.size(); ++i) {
    if (qinfo.adornment[i] == 'b') {
      if (!pool.IsGround(query.args[i])) {
        return InvalidArgumentError(
            StrCat("query argument ", i, " must be ground for adornment ",
                   qinfo.adornment));
      }
      seed.args.push_back(query.args[i]);
    }
  }
  magic.seeds.push_back(std::move(seed));
  return magic;
}

}  // namespace chainsplit
