#include "engine/grounder.h"

#include <algorithm>

#include "common/strings.h"
#include "term/unify.h"

namespace chainsplit {
namespace {

StatusOr<ArgPattern> CompileArg(const Program& program, TermId arg,
                                const std::vector<TermId>& slot_vars) {
  const TermPool& pool = program.pool();
  ArgPattern pattern;
  if (pool.IsVariable(arg)) {
    auto it = std::find(slot_vars.begin(), slot_vars.end(), arg);
    CS_CHECK(it != slot_vars.end()) << "variable missing from slot map";
    pattern.is_slot = true;
    pattern.slot = static_cast<int>(it - slot_vars.begin());
    return pattern;
  }
  if (!pool.IsGround(arg)) {
    return InvalidArgumentError(
        StrCat("rule is not flat (non-ground compound argument ",
               pool.ToString(arg), "); rectify it first"));
  }
  pattern.constant = arg;
  return pattern;
}

/// True when the builtin literal is evaluable given currently bound
/// slots. `=` needs one side bound to keep derived tuples ground.
bool LiteralEvaluable(const CompiledLiteral& lit,
                      const std::vector<bool>& slot_bound) {
  std::vector<bool> bound(lit.args.size());
  for (size_t i = 0; i < lit.args.size(); ++i) {
    bound[i] = !lit.args[i].is_slot || slot_bound[lit.args[i].slot];
  }
  if (lit.builtin == BuiltinKind::kEq) {
    return bound[0] || bound[1];
  }
  return BuiltinModeEvaluable(lit.builtin, bound);
}

int CountBoundArgs(const CompiledLiteral& lit,
                   const std::vector<bool>& slot_bound) {
  int n = 0;
  for (const ArgPattern& a : lit.args) {
    if (!a.is_slot || slot_bound[a.slot]) ++n;
  }
  return n;
}

void MarkBound(const CompiledLiteral& lit, std::vector<bool>* slot_bound) {
  for (const ArgPattern& a : lit.args) {
    if (a.is_slot) (*slot_bound)[a.slot] = true;
  }
}

}  // namespace

StatusOr<CompiledRule> CompileRule(const Program& program, const Rule& rule,
                                   int first_literal,
                                   const CardinalityEstimator& estimator) {
  CompiledRule compiled;
  compiled.source = rule;
  compiled.head_pred = rule.head.pred;
  compiled.slot_vars = program.RuleVariables(rule);

  for (TermId arg : rule.head.args) {
    CS_ASSIGN_OR_RETURN(ArgPattern p,
                        CompileArg(program, arg, compiled.slot_vars));
    compiled.head_args.push_back(p);
  }
  for (const Atom& atom : rule.body) {
    CompiledLiteral lit;
    lit.pred = atom.pred;
    lit.builtin = GetBuiltinKind(program.preds(), atom.pred);
    for (TermId arg : atom.args) {
      CS_ASSIGN_OR_RETURN(ArgPattern p,
                          CompileArg(program, arg, compiled.slot_vars));
      lit.args.push_back(p);
    }
    compiled.body.push_back(std::move(lit));
  }

  // Greedy schedule: builtins as soon as they become evaluable (cheap
  // deterministic filters), otherwise the relation literal with the
  // most bound arguments (indexable probe). This is the engine-level
  // finite-evaluability analysis: if it gets stuck, the rule cannot be
  // evaluated bottom-up and needs chain-split first.
  std::vector<bool> chosen(compiled.body.size(), false);
  std::vector<bool> slot_bound(compiled.slot_vars.size(), false);

  if (first_literal >= 0) {
    CS_CHECK(first_literal < static_cast<int>(compiled.body.size()))
        << "first_literal out of range";
    const CompiledLiteral& lit = compiled.body[first_literal];
    if (lit.builtin != BuiltinKind::kNone) {
      return InvalidArgumentError(
          "semi-naive delta literal must be a relation literal");
    }
    compiled.order.push_back(first_literal);
    chosen[first_literal] = true;
    MarkBound(lit, &slot_bound);
  }

  while (compiled.order.size() < compiled.body.size()) {
    int pick = -1;
    // Pass 1: evaluable builtins, in source order.
    for (size_t i = 0; i < compiled.body.size(); ++i) {
      if (chosen[i] || compiled.body[i].builtin == BuiltinKind::kNone) {
        continue;
      }
      if (LiteralEvaluable(compiled.body[i], slot_bound)) {
        pick = static_cast<int>(i);
        break;
      }
    }
    // Pass 2: cheapest relation literal — by estimated join expansion
    // when statistics are available (access-path selection), else by
    // the most bound arguments.
    if (pick < 0) {
      double best_cost = 0;
      for (size_t i = 0; i < compiled.body.size(); ++i) {
        if (chosen[i] || compiled.body[i].builtin != BuiltinKind::kNone) {
          continue;
        }
        const CompiledLiteral& lit = compiled.body[i];
        double cost;
        if (estimator != nullptr) {
          std::string adornment;
          for (const ArgPattern& a : lit.args) {
            adornment.push_back(!a.is_slot || slot_bound[a.slot] ? 'b'
                                                                 : 'f');
          }
          cost = estimator(lit.pred, adornment);
        } else {
          cost = -static_cast<double>(CountBoundArgs(lit, slot_bound));
        }
        if (pick < 0 || cost < best_cost) {
          best_cost = cost;
          pick = static_cast<int>(i);
        }
      }
    }
    if (pick < 0) {
      // Only unevaluable builtins remain.
      for (size_t i = 0; i < compiled.body.size(); ++i) {
        if (!chosen[i]) {
          return NotFinitelyEvaluableError(StrCat(
              "literal ", program.preds().Display(compiled.body[i].pred),
              " in rule for ", program.preds().Display(rule.head.pred),
              " is never evaluable bottom-up; chain-split required"));
        }
      }
    }
    compiled.order.push_back(pick);
    chosen[pick] = true;
    MarkBound(compiled.body[pick], &slot_bound);
  }

  for (const ArgPattern& p : compiled.head_args) {
    if (p.is_slot && !slot_bound[p.slot]) {
      return NotFinitelyEvaluableError(
          StrCat("rule for ", program.preds().Display(rule.head.pred),
                 " is not range-restricted: head variable ",
                 program.pool().ToString(compiled.slot_vars[p.slot]),
                 " is never bound"));
    }
  }
  return compiled;
}

namespace {

/// One bottom-up evaluation of a compiled rule: backtracking join over
/// the scheduled literal order, carrying slot values.
class RuleRun {
 public:
  RuleRun(TermPool& pool, const PredicateTable& preds,
          const CompiledRule& rule, const RelationLookup& rel_for,
          int delta_literal, const Relation* delta, Relation* out,
          EvalCounters* counters)
      : pool_(pool),
        preds_(preds),
        rule_(rule),
        rel_for_(rel_for),
        delta_literal_(delta_literal),
        delta_(delta),
        out_(out),
        counters_(counters),
        slots_(rule.slot_vars.size(), kNullTerm),
        probe_scratch_(rule.order.size()) {}

  Status Run() { return Recurse(0); }

 private:
  TermId ArgValue(const ArgPattern& p) const {
    return p.is_slot ? slots_[p.slot] : p.constant;
  }

  Status Recurse(size_t pos) {
    if (pos == rule_.order.size()) return EmitHead();
    const int lit_index = rule_.order[pos];
    const CompiledLiteral& lit = rule_.body[lit_index];
    if (lit.builtin != BuiltinKind::kNone) {
      return EvalBuiltinLiteral(pos, lit);
    }
    return EvalRelationLiteral(pos, lit_index, lit);
  }

  Status EmitHead() {
    Tuple tuple;
    tuple.reserve(rule_.head_args.size());
    for (const ArgPattern& p : rule_.head_args) {
      TermId v = ArgValue(p);
      CS_DCHECK(v != kNullTerm) << "unbound head slot at emission";
      tuple.push_back(v);
    }
    ++counters_->derivations;
    if (out_->Insert(tuple)) ++counters_->inserted;
    return Status::Ok();
  }

  Status EvalBuiltinLiteral(size_t pos, const CompiledLiteral& lit) {
    ++counters_->builtin_calls;
    // Bound arguments are passed as their ground values; unbound ones as
    // the rule's variable terms, whose bindings we read back.
    std::vector<TermId> args;
    args.reserve(lit.args.size());
    std::vector<int> unbound_slots;
    for (const ArgPattern& p : lit.args) {
      TermId v = ArgValue(p);
      if (v != kNullTerm) {
        args.push_back(v);
      } else {
        args.push_back(rule_.slot_vars[p.slot]);
        unbound_slots.push_back(p.slot);
      }
    }
    Substitution subst;
    bool ok = false;
    CS_RETURN_IF_ERROR(
        EvalBuiltin(pool_, preds_, lit.pred, args, &subst, &ok));
    if (!ok) return Status::Ok();
    std::vector<int> bound_here;
    for (int slot : unbound_slots) {
      if (slots_[slot] != kNullTerm) continue;  // repeated variable
      TermId value = subst.Resolve(rule_.slot_vars[slot], pool_);
      if (!pool_.IsGround(value)) {
        return NotFinitelyEvaluableError(
            StrCat("builtin ", preds_.Display(lit.pred),
                   " produced a non-ground value bottom-up"));
      }
      slots_[slot] = value;
      bound_here.push_back(slot);
    }
    Status status = Recurse(pos + 1);
    for (int slot : bound_here) slots_[slot] = kNullTerm;
    return status;
  }

  Status EvalRelationLiteral(size_t pos, int lit_index,
                             const CompiledLiteral& lit) {
    const Relation* rel =
        lit_index == delta_literal_ ? delta_ : rel_for_(lit.pred);
    if (rel == nullptr || rel->empty()) return Status::Ok();

    // Probe on the bound columns when there are any. The scratch
    // buffers are per recursion depth, so nested literals reuse their
    // own without allocating on every binding.
    ProbeScratch& scratch = probe_scratch_[pos];
    scratch.columns.clear();
    scratch.key.clear();
    for (size_t c = 0; c < lit.args.size(); ++c) {
      TermId v = ArgValue(lit.args[c]);
      if (v != kNullTerm) {
        scratch.columns.push_back(static_cast<int>(c));
        scratch.key.push_back(v);
      }
    }

    auto try_row = [&](Relation::Row row) -> Status {
      ++counters_->tuples_considered;
      std::vector<int>& bound_here = probe_scratch_[pos].bound_slots;
      bound_here.clear();
      bool match = true;
      for (size_t c = 0; c < lit.args.size(); ++c) {
        const ArgPattern& p = lit.args[c];
        TermId v = ArgValue(p);
        if (v != kNullTerm) {
          if (v != row[c]) {
            match = false;
            break;
          }
        } else {
          slots_[p.slot] = row[c];
          bound_here.push_back(p.slot);
        }
      }
      Status status = match ? Recurse(pos + 1) : Status::Ok();
      for (int slot : probe_scratch_[pos].bound_slots) {
        slots_[slot] = kNullTerm;
      }
      return status;
    };

    if (scratch.columns.empty()) {
      for (int64_t i = 0; i < rel->num_rows(); ++i) {
        CS_RETURN_IF_ERROR(try_row(rel->row(i)));
      }
    } else {
      Status status = Status::Ok();
      rel->ProbeEach(scratch.columns, scratch.key.data(), [&](int64_t i) {
        if (!status.ok()) return;
        status = try_row(rel->row(i));
      });
      CS_RETURN_IF_ERROR(status);
    }
    return Status::Ok();
  }

  /// Reusable probe buffers, one set per scheduled literal position so
  /// the nested join never allocates per binding.
  struct ProbeScratch {
    std::vector<int> columns;
    Tuple key;
    std::vector<int> bound_slots;
  };

  TermPool& pool_;
  const PredicateTable& preds_;
  const CompiledRule& rule_;
  const RelationLookup& rel_for_;
  int delta_literal_;
  const Relation* delta_;
  Relation* out_;
  EvalCounters* counters_;
  std::vector<TermId> slots_;
  std::vector<ProbeScratch> probe_scratch_;
};

}  // namespace

Status EvaluateRule(TermPool& pool, const PredicateTable& preds,
                    const CompiledRule& rule, const RelationLookup& rel_for,
                    int delta_literal, const Relation* delta, Relation* out,
                    EvalCounters* counters) {
  RuleRun run(pool, preds, rule, rel_for, delta_literal, delta, out,
              counters);
  return run.Run();
}

}  // namespace chainsplit
