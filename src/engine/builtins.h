#ifndef CHAINSPLIT_ENGINE_BUILTINS_H_
#define CHAINSPLIT_ENGINE_BUILTINS_H_

#include <span>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "term/term.h"
#include "term/unify.h"

namespace chainsplit {

/// The builtin (evaluable) predicates: comparisons over integers, the
/// functional predicates of §1.2 (`sum`, `times`, `cons`, and general
/// term construction `$mk_f`), and unification `=`.
///
/// Builtins are *infinite relations*: they can only be evaluated under
/// argument boundness patterns ("modes") that make the answer set
/// finite. That restriction is the root cause of finiteness-based
/// chain-split (§2.2): a chain generating path containing a builtin
/// whose inputs are unbound in forward evaluation must be split.
enum class BuiltinKind {
  kNone = 0,   // not a builtin
  kLt,         // <(X, Y)        requires X, Y bound
  kLe,         // =<(X, Y)
  kGt,         // >(X, Y)
  kGe,         // >=(X, Y)
  kEq,         // =(X, Y)        unification; always evaluable
  kNe,         // \=(X, Y)       requires both sides ground
  kSum,        // sum(X, Y, Z)   Z = X + Y; needs >= 2 of 3 bound
  kTimes,      // times(X, Y, Z) Z = X * Y; needs >= 2 of 3 bound
  kCons,       // cons(H, T, L)  L = [H|T]; needs (H and T) or L bound
  kMkCompound, // $mk_f(X1..Xk, V)  V = f(X1..Xk); needs X* or V bound
};

/// Classifies `pred`; kNone for ordinary predicates.
BuiltinKind GetBuiltinKind(const PredicateTable& preds, PredId pred);

/// True when `pred` is any builtin.
bool IsBuiltinPred(const PredicateTable& preds, PredId pred);

/// Name of the generated constructor predicate for functor `f`
/// ("$mk_" + f). Used by rule rectification.
std::string MkCompoundPredName(std::string_view functor);

/// Functor constructed by a kMkCompound predicate named `pred_name`.
std::string MkCompoundFunctor(std::string_view pred_name);

/// True when a builtin of `kind` with the given argument boundness is
/// finitely evaluable. `bound[i]` tells whether argument i is bound at
/// evaluation time. `arity` must match the builtin.
bool BuiltinModeEvaluable(BuiltinKind kind, const std::vector<bool>& bound);

/// Evaluates a builtin call. `args` are the call's argument terms,
/// which are resolved against `*subst`. On a successful, satisfiable
/// call, `*subst` is extended with output bindings and `*succeeded` is
/// true; on an unsatisfiable call `*succeeded` is false. Returns
/// NotFinitelyEvaluable when the boundness pattern is not a supported
/// mode (the caller should have delayed the literal).
///
/// All builtins here are deterministic in their evaluable modes (at
/// most one solution), which is what makes the "immediately evaluable
/// portion" of a chain cheap to iterate.
Status EvalBuiltin(TermPool& pool, const PredicateTable& preds, PredId pred,
                   std::span<const TermId> args, Substitution* subst,
                   bool* succeeded);

}  // namespace chainsplit

#endif  // CHAINSPLIT_ENGINE_BUILTINS_H_
