#include "engine/seminaive.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "rel/ops.h"

namespace chainsplit {
namespace {

/// A rule compiled together with its semi-naive delta variants: one
/// compiled form per IDB body literal, scheduled to start from that
/// literal's delta relation.
struct RuleVariants {
  CompiledRule base;                     // no delta (initialization round)
  std::vector<int> idb_literals;         // body indexes with IDB predicates
  std::vector<CompiledRule> delta_form;  // parallel to idb_literals
};

/// Running sum of Relation telemetry counters.
struct TelemetrySum {
  int64_t probes = 0;
  int64_t collisions = 0;
  int64_t arena = 0;

  void Add(const Relation& rel) {
    Relation::Telemetry t = rel.telemetry();
    probes += t.probes;
    collisions += t.hash_collisions;
    arena += t.arena_bytes;
  }
};

/// Sums telemetry over every stored relation of `db`.
TelemetrySum DatabaseTelemetry(const EvalDb& db) {
  TelemetrySum sum;
  for (PredId pred : db.StoredPredicates()) {
    const Relation* rel = db.GetRelation(pred);
    if (rel != nullptr) sum.Add(*rel);
  }
  return sum;
}

}  // namespace

Status SemiNaiveEvaluate(EvalDb* db, const std::vector<Rule>& rules,
                         const SemiNaiveOptions& options,
                         SemiNaiveStats* stats) {
  *stats = SemiNaiveStats{};
  Program& program = db->program();

  // Storage-telemetry baseline: relation counters are cumulative over
  // each relation's lifetime, so report deltas against the state at
  // entry. Scratch and delta relations are created below and folded in
  // as they are consumed.
  const int64_t parallel_batches_before = ParallelJoinBatches();
  const PartitionedJoinTelemetry pjoin_before = GetPartitionedJoinTelemetry();
  const TelemetrySum db_before = DatabaseTelemetry(*db);
  TelemetrySum scratch_sum;

  std::unordered_set<PredId> idb;
  for (const Rule& rule : rules) idb.insert(rule.head.pred);

  std::vector<RuleVariants> compiled;
  compiled.reserve(rules.size());
  for (const Rule& rule : rules) {
    RuleVariants variants;
    CS_ASSIGN_OR_RETURN(variants.base,
                        CompileRule(program, rule, -1, options.estimator));
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (idb.count(rule.body[i].pred) == 0) continue;
      variants.idb_literals.push_back(static_cast<int>(i));
      CS_ASSIGN_OR_RETURN(
          CompiledRule delta_rule,
          CompileRule(program, rule, static_cast<int>(i),
                      options.estimator));
      variants.delta_form.push_back(std::move(delta_rule));
    }
    compiled.push_back(std::move(variants));
  }

  RelationLookup rel_for = [db](PredId pred) -> const Relation* {
    return db->GetRelation(pred);
  };

  // Per-IDB-predicate delta relations. After the initialization round a
  // predicate's delta is everything it currently contains (pre-seeded
  // tuples included: downstream rules have never consumed them).
  std::unordered_map<PredId, Relation> delta;
  std::unordered_map<PredId, Relation> next_delta;
  for (PredId pred : idb) {
    delta.emplace(pred, Relation(program.preds().arity(pred)));
    next_delta.emplace(pred, Relation(program.preds().arity(pred)));
  }

  // Initialization round: every rule once against the full relations.
  {
    TraceSpan init_span(options.trace, "fixpoint_init");
    for (const RuleVariants& variants : compiled) {
      CS_RETURN_IF_ERROR(CheckCancel(options.cancel));
      Relation scratch(program.preds().arity(variants.base.head_pred));
      CS_RETURN_IF_ERROR(EvaluateRule(db->pool(), program.preds(),
                                      variants.base, rel_for,
                                      /*delta_literal=*/-1, nullptr, &scratch,
                                      &stats->counters));
      Relation* total = db->GetOrCreateRelation(variants.base.head_pred);
      for (int64_t i = 0; i < scratch.num_rows(); ++i) {
        if (total->Insert(scratch.row(i))) ++stats->total_derived;
      }
      scratch_sum.Add(scratch);
    }
    for (PredId pred : idb) {
      const Relation* total = db->GetRelation(pred);
      if (total != nullptr) delta.at(pred).UnionWith(*total);
    }
    init_span.Attr("rules", static_cast<int64_t>(compiled.size()));
    init_span.Attr("derived", stats->total_derived);
  }

  while (true) {
    bool any_delta = false;
    int64_t delta_rows = 0;
    for (const auto& [pred, rel] : delta) {
      any_delta |= !rel.empty();
      delta_rows += rel.num_rows();
    }
    if (!any_delta) break;
    CS_RETURN_IF_ERROR(CheckCancel(options.cancel));
    if (++stats->iterations > options.max_iterations) {
      return ResourceExhaustedError(
          StrCat("fixpoint did not converge within ", options.max_iterations,
                 " iterations"));
    }

    // One span per iteration: the delta feeding this round plus the work
    // it triggered (derived tuples and join counters as deltas).
    TraceSpan iter_span(options.trace, "fixpoint_iteration");
    iter_span.Attr("iteration", stats->iterations);
    iter_span.Attr("delta_rows", delta_rows);
    const int64_t derived_before_iter = stats->total_derived;
    const EvalCounters counters_before_iter = stats->counters;

    for (auto& [pred, rel] : next_delta) rel.Clear();

    for (const RuleVariants& variants : compiled) {
      Relation scratch(program.preds().arity(variants.base.head_pred));
      if (options.naive) {
        CS_RETURN_IF_ERROR(EvaluateRule(
            db->pool(), program.preds(), variants.base, rel_for,
            /*delta_literal=*/-1, nullptr, &scratch, &stats->counters));
      } else {
        for (size_t v = 0; v < variants.idb_literals.size(); ++v) {
          int lit = variants.idb_literals[v];
          const Relation& d =
              delta.at(variants.base.source.body[lit].pred);
          if (d.empty()) continue;
          CS_RETURN_IF_ERROR(EvaluateRule(
              db->pool(), program.preds(), variants.delta_form[v], rel_for,
              lit, &d, &scratch, &stats->counters));
        }
      }
      Relation* total = db->GetOrCreateRelation(variants.base.head_pred);
      Relation& nd = next_delta.at(variants.base.head_pred);
      for (int64_t i = 0; i < scratch.num_rows(); ++i) {
        if (total->Insert(scratch.row(i))) {
          ++stats->total_derived;
          nd.Insert(scratch.row(i));
        }
      }
      scratch_sum.Add(scratch);
    }
    iter_span.Attr("derived",
                   stats->total_derived - derived_before_iter);
    iter_span.Attr("tuples_considered",
                   stats->counters.tuples_considered -
                       counters_before_iter.tuples_considered);
    iter_span.Attr("derivations", stats->counters.derivations -
                                      counters_before_iter.derivations);
    if (stats->total_derived > options.max_tuples) {
      return ResourceExhaustedError(
          StrCat("derived more than ", options.max_tuples, " tuples"));
    }
    std::swap(delta, next_delta);
  }

  TelemetrySum db_after = DatabaseTelemetry(*db);
  TelemetrySum deltas;
  for (const auto& [pred, rel] : delta) deltas.Add(rel);
  for (const auto& [pred, rel] : next_delta) deltas.Add(rel);
  stats->storage.probes =
      db_after.probes - db_before.probes + scratch_sum.probes +
      deltas.probes;
  stats->storage.hash_collisions = db_after.collisions -
                                   db_before.collisions +
                                   scratch_sum.collisions + deltas.collisions;
  stats->storage.arena_bytes = db_after.arena + deltas.arena;
  stats->storage.parallel_batches =
      ParallelJoinBatches() - parallel_batches_before;
  const PartitionedJoinTelemetry pjoin = GetPartitionedJoinTelemetry();
  stats->storage.partitioned_batches = pjoin.batches - pjoin_before.batches;
  stats->storage.partitioned_views_built =
      pjoin.views_built - pjoin_before.views_built;
  stats->storage.partition_build_rows =
      pjoin.build_rows - pjoin_before.build_rows;
  stats->storage.max_partition_rows =
      pjoin.max_partition_rows - pjoin_before.max_partition_rows;
  const int64_t run_partitions = pjoin.partitions - pjoin_before.partitions;
  if (stats->storage.partition_build_rows > 0 &&
      stats->storage.partitioned_batches > 0) {
    // Average per-batch skew, weighted by build rows: sum(max_p) over
    // batches times the mean partition count over the ideal uniform
    // split.
    stats->storage.partition_skew =
        static_cast<double>(stats->storage.max_partition_rows) *
        (static_cast<double>(run_partitions) /
         stats->storage.partitioned_batches) /
        static_cast<double>(stats->storage.partition_build_rows);
  }
  return Status::Ok();
}

}  // namespace chainsplit
