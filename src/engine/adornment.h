#ifndef CHAINSPLIT_ENGINE_ADORNMENT_H_
#define CHAINSPLIT_ENGINE_ADORNMENT_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace chainsplit {

/// An adornment is a string over {'b','f'}, one character per argument
/// ("bf" = first bound, second free), as in the magic sets literature
/// and §2.2 of the paper.

/// Decides whether the bindings produced by evaluating `literal` (whose
/// argument boundness at that point is `literal_adornment`) are
/// propagated to the literals after it.
///
/// Returning false *delays* the literal: subsequent literals are
/// adorned as if its output variables were free. This is exactly the
/// modified binding propagation rule of Algorithm 3.1 — an
/// efficiency-based chain-split cuts propagation across a weak linkage,
/// and a finiteness-based one across a non-evaluable functional
/// predicate. The default gate (nullptr) always propagates
/// (chain-following).
using PropagationGate =
    std::function<bool(const Atom& literal,
                       const std::string& literal_adornment)>;

/// Info about one adorned predicate.
struct AdornedPredInfo {
  PredId original = kNullPred;
  std::string adornment;
};

/// One adorned rule plus, per body literal, whether its bindings were
/// propagated onward. The magic transform's sideways slices follow
/// propagating literals only, which is how a gated (chain-split)
/// adornment keeps the weak linkage out of the magic rules.
struct AdornedRule {
  Rule rule;
  std::vector<bool> propagates;
};

/// Result of adorning a program for a query call pattern.
struct AdornedProgram {
  /// Rules over adorned IDB predicates (`p__bf`); EDB predicates and
  /// builtins keep their names.
  std::vector<AdornedRule> rules;
  /// The adorned predicate of the query.
  PredId query_pred = kNullPred;
  /// adorned pred -> original pred + adornment.
  std::unordered_map<PredId, AdornedPredInfo> info;
};

/// Returns the adornment of `atom` given the currently bound variables:
/// an argument is 'b' when it is ground or all of its variables are in
/// `bound`.
std::string AtomAdornment(const TermPool& pool, const Atom& atom,
                          const std::vector<TermId>& bound);

/// Adorns `rules` (typically the rectified rule set) for a call to
/// `query_pred` with `adornment`, using a left-to-right sideways
/// information passing strategy gated by `gate`. New adorned predicates
/// are interned in the program's predicate table; a predicate is IDB
/// iff it heads a rule in `rules`.
StatusOr<AdornedProgram> AdornProgram(Program* program,
                                      const std::vector<Rule>& rules,
                                      PredId query_pred,
                                      const std::string& adornment,
                                      const PropagationGate& gate = nullptr);

}  // namespace chainsplit

#endif  // CHAINSPLIT_ENGINE_ADORNMENT_H_
