#include "engine/builtins.h"

#include "ast/builtin_names.h"
#include "common/logging.h"
#include "common/strings.h"

namespace chainsplit {

BuiltinKind GetBuiltinKind(const PredicateTable& preds, PredId pred) {
  const std::string& name = preds.name(pred);
  int arity = preds.arity(pred);
  if (arity == 2) {
    if (name == kPredLt) return BuiltinKind::kLt;
    if (name == kPredLe) return BuiltinKind::kLe;
    if (name == kPredGt) return BuiltinKind::kGt;
    if (name == kPredGe) return BuiltinKind::kGe;
    if (name == kPredEq) return BuiltinKind::kEq;
    if (name == kPredNe) return BuiltinKind::kNe;
  }
  if (arity == 3) {
    if (name == kPredSum) return BuiltinKind::kSum;
    if (name == kPredTimes) return BuiltinKind::kTimes;
    if (name == kPredCons) return BuiltinKind::kCons;
  }
  if (StartsWith(name, "$mk_")) return BuiltinKind::kMkCompound;
  return BuiltinKind::kNone;
}

bool IsBuiltinPred(const PredicateTable& preds, PredId pred) {
  return GetBuiltinKind(preds, pred) != BuiltinKind::kNone;
}

std::string MkCompoundPredName(std::string_view functor) {
  return StrCat("$mk_", functor);
}

std::string MkCompoundFunctor(std::string_view pred_name) {
  CS_CHECK(StartsWith(pred_name, "$mk_")) << "not a constructor predicate";
  return std::string(pred_name.substr(4));
}

bool BuiltinModeEvaluable(BuiltinKind kind, const std::vector<bool>& bound) {
  switch (kind) {
    case BuiltinKind::kNone:
      return false;
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe:
    case BuiltinKind::kNe:
      return bound[0] && bound[1];
    case BuiltinKind::kEq:
      // Unification of two terms is always finitely evaluable: it never
      // enumerates an infinite relation, it only binds.
      return true;
    case BuiltinKind::kSum:
    case BuiltinKind::kTimes: {
      int n = 0;
      for (bool b : bound) n += b ? 1 : 0;
      return n >= 2;
    }
    case BuiltinKind::kCons:
      return (bound[0] && bound[1]) || bound[2];
    case BuiltinKind::kMkCompound: {
      bool all_inputs = true;
      for (size_t i = 0; i + 1 < bound.size(); ++i) {
        all_inputs = all_inputs && bound[i];
      }
      return all_inputs || bound.back();
    }
  }
  return false;
}

namespace {

Status NotEvaluable(const PredicateTable& preds, PredId pred) {
  return NotFinitelyEvaluableError(
      StrCat("builtin ", preds.Display(pred),
             " called with an unsupported boundness pattern"));
}

/// Unifies `term` with the integer `value`, extending `*subst`.
bool UnifyInt(TermPool& pool, TermId term, int64_t value,
              Substitution* subst) {
  return Unify(pool, term, pool.MakeInt(value), subst);
}

}  // namespace

Status EvalBuiltin(TermPool& pool, const PredicateTable& preds, PredId pred,
                   std::span<const TermId> args, Substitution* subst,
                   bool* succeeded) {
  BuiltinKind kind = GetBuiltinKind(preds, pred);
  CS_CHECK(kind != BuiltinKind::kNone)
      << "EvalBuiltin on non-builtin " << preds.Display(pred);
  *succeeded = false;

  // Resolve arguments under the current substitution.
  std::vector<TermId> resolved;
  resolved.reserve(args.size());
  for (TermId a : args) resolved.push_back(subst->Resolve(a, pool));

  switch (kind) {
    case BuiltinKind::kNone:
      break;
    case BuiltinKind::kEq:
      *succeeded = Unify(pool, resolved[0], resolved[1], subst);
      return Status::Ok();
    case BuiltinKind::kNe:
      if (!pool.IsGround(resolved[0]) || !pool.IsGround(resolved[1])) {
        return NotEvaluable(preds, pred);
      }
      *succeeded = resolved[0] != resolved[1];
      return Status::Ok();
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe: {
      if (!pool.IsGround(resolved[0]) || !pool.IsGround(resolved[1])) {
        return NotEvaluable(preds, pred);
      }
      if (!pool.IsInt(resolved[0]) || !pool.IsInt(resolved[1])) {
        // Comparison on non-integers: fail rather than error, matching
        // the "typed EDB" assumption of the paper's examples.
        return Status::Ok();
      }
      int64_t x = pool.int_value(resolved[0]);
      int64_t y = pool.int_value(resolved[1]);
      switch (kind) {
        case BuiltinKind::kLt: *succeeded = x < y; break;
        case BuiltinKind::kLe: *succeeded = x <= y; break;
        case BuiltinKind::kGt: *succeeded = x > y; break;
        case BuiltinKind::kGe: *succeeded = x >= y; break;
        default: break;
      }
      return Status::Ok();
    }
    case BuiltinKind::kSum:
    case BuiltinKind::kTimes: {
      bool b0 = pool.IsInt(resolved[0]);
      bool b1 = pool.IsInt(resolved[1]);
      bool b2 = pool.IsInt(resolved[2]);
      // Any ground non-int argument simply fails.
      for (TermId t : resolved) {
        if (pool.IsGround(t) && !pool.IsInt(t)) return Status::Ok();
      }
      int64_t x = b0 ? pool.int_value(resolved[0]) : 0;
      int64_t y = b1 ? pool.int_value(resolved[1]) : 0;
      int64_t z = b2 ? pool.int_value(resolved[2]) : 0;
      if (kind == BuiltinKind::kSum) {
        if (b0 && b1) {
          *succeeded = UnifyInt(pool, resolved[2], x + y, subst);
        } else if (b0 && b2) {
          *succeeded = UnifyInt(pool, resolved[1], z - x, subst);
        } else if (b1 && b2) {
          *succeeded = UnifyInt(pool, resolved[0], z - y, subst);
        } else {
          return NotEvaluable(preds, pred);
        }
      } else {
        if (b0 && b1) {
          *succeeded = UnifyInt(pool, resolved[2], x * y, subst);
        } else if (b0 && b2) {
          if (x == 0 || z % x != 0) return Status::Ok();
          *succeeded = UnifyInt(pool, resolved[1], z / x, subst);
        } else if (b1 && b2) {
          if (y == 0 || z % y != 0) return Status::Ok();
          *succeeded = UnifyInt(pool, resolved[0], z / y, subst);
        } else {
          return NotEvaluable(preds, pred);
        }
      }
      return Status::Ok();
    }
    case BuiltinKind::kCons: {
      // cons(H, T, L) is the constraint L = '.'(H, T): pure unification,
      // valid on non-ground arguments (the top-down evaluator relies on
      // this). Bottom-up callers must consult BuiltinModeEvaluable first
      // so derived tuples stay ground.
      *succeeded =
          Unify(pool, resolved[2], pool.MakeCons(resolved[0], resolved[1]),
                subst);
      return Status::Ok();
    }
    case BuiltinKind::kMkCompound: {
      // $mk_f(X1..Xk, V) is the constraint V = f(X1..Xk); see kCons.
      std::string functor = MkCompoundFunctor(preds.name(pred));
      size_t k = resolved.size() - 1;
      TermId built = pool.MakeCompound(
          functor, std::span<const TermId>(resolved.data(), k));
      *succeeded = Unify(pool, resolved[k], built, subst);
      return Status::Ok();
    }
  }
  return InternalError("unhandled builtin kind");
}

}  // namespace chainsplit
