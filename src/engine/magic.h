#ifndef CHAINSPLIT_ENGINE_MAGIC_H_
#define CHAINSPLIT_ENGINE_MAGIC_H_

#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "engine/adornment.h"

namespace chainsplit {

/// Result of the magic sets transformation of an adorned program.
///
/// Evaluation protocol: insert `seeds` into the database, run
/// SemiNaiveEvaluate over `rules`, then read the query answers from the
/// relation of `answer_pred`.
struct MagicProgram {
  std::vector<Rule> rules;  // magic rules + modified answer rules
  std::vector<Atom> seeds;  // ground magic facts derived from the query
  PredId answer_pred = kNullPred;
  /// adorned predicate -> its magic predicate.
  std::unordered_map<PredId, PredId> magic_of;
};

/// Magic sets transformation (generalized magic sets with sideways
/// slices), supporting the gated adornments of Algorithm 3.1.
///
/// For every adorned rule `H :- B1..Bn` it produces the modified rule
/// `H :- m_H(bound(H)), B1..Bn`, and for every adorned IDB body literal
/// `Bi` the magic rule
///
///   m_Bi(bound(Bi)) :- m_H(bound(H)), <slice>,
///
/// where <slice> is the set of *propagating* body literals B1..Bi-1
/// transitively connected to the bound arguments of Bi. Literals whose
/// bindings were gated off (the chain-split) never enter a slice, so a
/// split recursion's magic set iterates on the strong linkage only —
/// dropping literals from a magic body only enlarges the magic set, so
/// the transformation stays sound for any gate.
///
/// `query` is the original query atom; its ground arguments must be at
/// the 'b' positions of the adornment used to build `adorned`.
StatusOr<MagicProgram> MagicTransform(Program* program,
                                      const AdornedProgram& adorned,
                                      const Atom& query);

}  // namespace chainsplit

#endif  // CHAINSPLIT_ENGINE_MAGIC_H_
