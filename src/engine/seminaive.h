#ifndef CHAINSPLIT_ENGINE_SEMINAIVE_H_
#define CHAINSPLIT_ENGINE_SEMINAIVE_H_

#include <vector>

#include "ast/ast.h"
#include "common/deadline.h"
#include "common/status.h"
#include "engine/grounder.h"
#include "obs/trace.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Options for bottom-up fixpoint evaluation.
struct SemiNaiveOptions {
  /// Fixpoint iteration cap; exceeded => kResourceExhausted. Guards
  /// against runaway functional recursions (the paper's non-finitely-
  /// evaluable cases surface here when the static analysis is bypassed).
  int64_t max_iterations = 1000000;

  /// Cap on total derived tuples; exceeded => kResourceExhausted.
  int64_t max_tuples = 20000000;

  /// When true, runs the textbook naive iteration (re-deriving
  /// everything each round). Used as a test oracle for semi-naive.
  bool naive = false;

  /// Optional statistics-based cardinality estimator used to order
  /// body literals (access-path selection). Null keeps the
  /// bound-argument heuristic.
  CardinalityEstimator estimator;

  /// Cooperative cancellation/deadline token, checked once per fixpoint
  /// iteration (and between initialization-round rules). Null = never
  /// cancelled. On expiry the evaluation stops with kDeadlineExceeded
  /// or kCancelled; `*stats` holds the partial work done so far.
  const CancelToken* cancel = nullptr;

  /// Optional trace sink riding the same seam as `cancel`: when set,
  /// the fixpoint records one span per iteration carrying delta sizes,
  /// tuples derived, and join work counters. Null = no tracing; the
  /// hot loop pays only a pointer test.
  Trace* trace = nullptr;
};

/// Storage-layer telemetry of one fixpoint run, aggregated from the
/// Relation counters (see Relation::Telemetry): attribution for the
/// arena/open-addressing storage engine, reported by the benchmarks
/// alongside the machine-independent `derived` counters.
struct StorageStats {
  int64_t probes = 0;           // index probes issued during the run
  int64_t hash_collisions = 0;  // open-addressing collision steps
  int64_t arena_bytes = 0;      // arena footprint at fixpoint
  int64_t parallel_batches = 0;  // HashJoin parallel batches (both paths)

  // Partitioned-join telemetry for this run (deltas of
  // GetPartitionedJoinTelemetry, see rel/ops.h). partition_skew is
  // max-partition rows over the ideal build_rows/partitions split,
  // averaged across batches: 1.0 = perfectly balanced partitions.
  int64_t partitioned_batches = 0;
  int64_t partitioned_views_built = 0;
  int64_t partition_build_rows = 0;
  int64_t max_partition_rows = 0;
  double partition_skew = 1.0;
};

/// Aggregate statistics of one fixpoint run; benchmarks report these as
/// machine-independent work measures.
struct SemiNaiveStats {
  int64_t iterations = 0;
  int64_t total_derived = 0;  // new tuples across all IDB predicates
  EvalCounters counters;
  StorageStats storage;
};

/// Evaluates `rules` bottom-up to fixpoint over the relations of `*db`
/// (EDB relations plus any pre-seeded IDB tuples, e.g. magic seeds).
/// Derived tuples are inserted into the head predicates' relations in
/// `*db`.
///
/// Rules must be flat (see grounder.h); builtins are scheduled and
/// checked for finite evaluability at compile time, so a program whose
/// chains need splitting is rejected with kNotFinitelyEvaluable rather
/// than looping.
Status SemiNaiveEvaluate(EvalDb* db, const std::vector<Rule>& rules,
                         const SemiNaiveOptions& options,
                         SemiNaiveStats* stats);

}  // namespace chainsplit

#endif  // CHAINSPLIT_ENGINE_SEMINAIVE_H_
