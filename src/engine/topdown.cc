#include "engine/topdown.h"

#include <pthread.h>

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "engine/builtins.h"
#include "rel/relation.h"

namespace chainsplit {

/// One Solve() call: goal stack + substitution with trail-based
/// backtracking.
class TopDownEvaluator::Impl {
 public:
  Impl(EvalDb* db, const TopDownOptions& options, TopDownStats* stats,
       const std::function<void(const Substitution&)>& on_solution)
      : db_(db),
        pool_(db->pool()),
        preds_(db->program().preds()),
        options_(options),
        stats_(stats),
        on_solution_(on_solution) {}

  Status Run(const std::vector<Atom>& goals) {
    // The stack holds pending goals, top = next to prove.
    for (size_t i = goals.size(); i-- > 0;) stack_.push_back(goals[i]);
    return Prove();
  }

 private:
  bool Done() const { return stats_->solutions >= options_.max_solutions; }

  Status Prove() {
    if (Done()) return Status::Ok();
    if (stack_.empty()) {
      ++stats_->solutions;
      on_solution_(subst_);
      return Status::Ok();
    }
    if (++stats_->steps > options_.max_steps) {
      return ResourceExhaustedError(
          StrCat("top-down evaluation exceeded ", options_.max_steps,
                 " goal expansions"));
    }
    if ((stats_->steps & 1023) == 0) {
      CS_RETURN_IF_ERROR(CheckCancel(options_.cancel));
    }
    stats_->deepest =
        std::max(stats_->deepest, static_cast<int64_t>(stack_.size()));
    if (static_cast<int64_t>(stack_.size()) > options_.max_depth) {
      return ResourceExhaustedError(
          StrCat("top-down goal stack exceeded depth ", options_.max_depth,
                 " (non-terminating recursion?)"));
    }

    Atom goal = stack_.back();
    stack_.pop_back();

    Status status = Status::Ok();
    if (IsBuiltinPred(preds_, goal.pred)) {
      status = ProveBuiltin(goal);
    } else {
      status = ProveFacts(goal);
      if (status.ok()) status = ProveRules(goal);
    }
    stack_.push_back(std::move(goal));
    return status;
  }

  Status ProveBuiltin(const Atom& goal) {
    size_t mark = subst_.LogSize();
    bool ok = false;
    CS_RETURN_IF_ERROR(
        EvalBuiltin(pool_, preds_, goal.pred, goal.args, &subst_, &ok));
    Status status = ok ? Prove() : Status::Ok();
    subst_.RollbackTo(mark);
    return status;
  }

  Status ProveFacts(const Atom& goal) {
    const Relation* rel = db_->GetRelation(goal.pred);
    if (rel == nullptr || rel->empty()) return Status::Ok();

    // Probe on the columns whose resolved goal argument is ground.
    std::vector<int> bound_columns;
    Tuple key;
    std::vector<TermId> resolved(goal.args.size());
    for (size_t c = 0; c < goal.args.size(); ++c) {
      resolved[c] = subst_.Resolve(goal.args[c], pool_);
      if (pool_.IsGround(resolved[c])) {
        bound_columns.push_back(static_cast<int>(c));
        key.push_back(resolved[c]);
      }
    }

    auto try_row = [&](Relation::Row row) -> Status {
      size_t mark = subst_.LogSize();
      bool ok = true;
      for (size_t c = 0; c < row.size() && ok; ++c) {
        ok = Unify(pool_, resolved[c], row[c], &subst_);
      }
      Status status = ok ? Prove() : Status::Ok();
      subst_.RollbackTo(mark);
      return status;
    };

    if (bound_columns.empty()) {
      for (int64_t i = 0; i < rel->num_rows() && !Done(); ++i) {
        CS_RETURN_IF_ERROR(try_row(rel->row(i)));
      }
    } else {
      Status status = Status::Ok();
      rel->ProbeEach(bound_columns, key.data(), [&](int64_t i) {
        if (!status.ok() || Done()) return;
        status = try_row(rel->row(i));
      });
      CS_RETURN_IF_ERROR(status);
    }
    return Status::Ok();
  }

  Status ProveRules(const Atom& goal) {
    for (const Rule* rule : db_->program().RulesFor(goal.pred)) {
      if (Done()) break;
      size_t mark = subst_.LogSize();
      // Standardize the rule apart.
      std::unordered_map<TermId, TermId> renaming;
      bool ok = true;
      for (size_t a = 0; a < goal.args.size() && ok; ++a) {
        TermId head_arg = RenameApart(pool_, rule->head.args[a], &renaming);
        ok = Unify(pool_, goal.args[a], head_arg, &subst_);
      }
      if (ok) {
        size_t stack_base = stack_.size();
        for (size_t b = rule->body.size(); b-- > 0;) {
          Atom renamed = rule->body[b];
          for (TermId& arg : renamed.args) {
            arg = RenameApart(pool_, arg, &renaming);
          }
          stack_.push_back(std::move(renamed));
        }
        Status status = Prove();
        stack_.resize(stack_base);
        subst_.RollbackTo(mark);
        CS_RETURN_IF_ERROR(status);
      } else {
        subst_.RollbackTo(mark);
      }
    }
    return Status::Ok();
  }

  EvalDb* db_;
  TermPool& pool_;
  const PredicateTable& preds_;
  const TopDownOptions& options_;
  TopDownStats* stats_;
  const std::function<void(const Substitution&)>& on_solution_;
  std::vector<Atom> stack_;
  Substitution subst_;
};

TopDownEvaluator::TopDownEvaluator(EvalDb* db, TopDownOptions options)
    : db_(db), options_(options) {}

namespace {

/// SLD resolution recurses one C++ frame chain per goal expansion, so
/// provable depth is bounded by stack size, not max_depth. Run the
/// prover on a dedicated thread with an explicit large stack: deep but
/// legal proofs (and sanitizer builds, whose frames are several times
/// larger) must not depend on the caller's RLIMIT_STACK. Reserved
/// address space only — pages are committed on use.
constexpr size_t kProverStackBytes = size_t{256} << 20;

void* ProverTrampoline(void* arg) {
  (*static_cast<std::function<void()>*>(arg))();
  return nullptr;
}

}  // namespace

Status TopDownEvaluator::Solve(
    const std::vector<Atom>& goals,
    const std::function<void(const Substitution&)>& on_solution) {
  Impl impl(db_, options_, &stats_, on_solution);
  Status result = Status::Ok();
  std::function<void()> run = [&] { result = impl.Run(goals); };
  pthread_attr_t attr;
  pthread_t prover;
  if (pthread_attr_init(&attr) != 0) return impl.Run(goals);
  const bool spawned =
      pthread_attr_setstacksize(&attr, kProverStackBytes) == 0 &&
      pthread_create(&prover, &attr, ProverTrampoline, &run) == 0;
  pthread_attr_destroy(&attr);
  if (!spawned) return impl.Run(goals);  // fall back to this stack
  pthread_join(prover, nullptr);
  return result;
}

StatusOr<std::vector<std::vector<TermId>>> TopDownEvaluator::Answers(
    const std::vector<Atom>& goals, const std::vector<TermId>& vars) {
  std::vector<std::vector<TermId>> answers;
  std::unordered_set<Tuple, TupleHash> seen;
  TermPool& pool = db_->pool();
  Status status = Solve(goals, [&](const Substitution& subst) {
    std::vector<TermId> row;
    row.reserve(vars.size());
    for (TermId v : vars) row.push_back(subst.Resolve(v, pool));
    if (seen.insert(row).second) answers.push_back(std::move(row));
  });
  CS_RETURN_IF_ERROR(status);
  return answers;
}

}  // namespace chainsplit
