#ifndef CHAINSPLIT_OBS_TRACE_H_
#define CHAINSPLIT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chainsplit {

/// Trace — the span tree of one query evaluation (docs/
/// observability.md §Traces).
///
/// A Trace is created per request by the query service and threaded by
/// pointer through the planner and the evaluators, riding the same
/// options seam as CancelToken. Every instrumentation site takes a
/// nullable Trace*: a null pointer means tracing is off and the whole
/// site reduces to one branch — the hot paths stay unaffected unless a
/// trace was requested (`:trace on` or an armed slow-query log).
///
/// A Trace is confined to the evaluating thread (one query evaluates
/// on one thread; parallel join workers are below the span
/// granularity), so it needs no synchronization.
///
/// Storage is tuned so recording stays invisible next to evaluation:
/// spans and attributes are flat PODs held inline in the Trace object
/// (first kInlineSpans spans; kMaxAttrs attributes per span), so a
/// typical query trace does no heap allocation at all while the query
/// runs. That matters beyond the allocation cost itself: a per-query
/// heap block living across the whole evaluation measurably slowed the
/// *evaluator's* own allocation reuse (~5 us/query on glibc). Long
/// fixpoints spill extra spans into a vector; attribute overflow
/// beyond kMaxAttrs is dropped (sites use at most 5).
class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  /// First spans stored inline (no heap); more spill to a vector.
  static constexpr int kInlineSpans = 24;
  /// Attributes per span; SetAttr beyond this is dropped.
  static constexpr int kMaxAttrs = 6;

  explicit Trace(std::string name);

  /// Opens a span as a child of the innermost still-open span (the
  /// root when none). Returns the span id for EndSpan/attributes.
  /// `name` must outlive the Trace — every site passes a string
  /// literal; storing the pointer keeps span open/close to a couple of
  /// clock reads and a POD store (no per-span string allocation).
  int BeginSpan(const char* name);
  void EndSpan(int id);

  /// Attaches an attribute to a span; rendered into the Chrome trace
  /// "args" object. `key` and string `value` must outlive the Trace —
  /// every site passes literals or *ToString statics.
  void SetAttr(int id, const char* key, int64_t value);
  void SetAttr(int id, const char* key, const char* value);

  /// Closes the root span. Idempotent; called by the service when the
  /// request finishes (also closes any spans left open by an error
  /// unwind).
  void Finish();

  /// Wall time of the root span so far (or final once finished).
  std::chrono::microseconds duration() const;

  /// The trace as a Chrome trace_event JSON object
  /// ({"traceEvents": [...]}, "X" complete events, microsecond
  /// timestamps) — loadable in chrome://tracing / Perfetto.
  std::string ToChromeJson() const;

  int num_spans() const { return num_spans_; }

 private:
  struct Attr {
    const char* key = "";
    const char* string_value = nullptr;  // null = int attribute
    int64_t int_value = 0;
  };
  struct Span {
    const char* name = "";  // static-lifetime; the root uses root_name_
    int parent = -1;
    int num_attrs = 0;
    int64_t start_us = 0;
    int64_t end_us = -1;  // -1 = still open
    Attr attrs[kMaxAttrs];
  };

  int64_t NowUs() const;
  Span& span(int id) {
    return id < kInlineSpans ? inline_spans_[id]
                             : extra_spans_[id - kInlineSpans];
  }
  const Span& span(int id) const {
    return id < kInlineSpans ? inline_spans_[id]
                             : extra_spans_[id - kInlineSpans];
  }

  Clock::time_point t0_;
  std::string root_name_;  // the root span's (dynamic) name
  int num_spans_ = 0;
  Span inline_spans_[kInlineSpans];
  std::vector<Span> extra_spans_;  // spans_[kInlineSpans:]
  std::vector<int> open_;  // innermost-last stack of open span ids
};

/// RAII span: opens on construction, closes on destruction. All
/// methods are no-ops when `trace` is null, so instrumentation sites
/// cost one pointer test when tracing is off.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, const char* name)
      : trace_(trace),
        id_(trace == nullptr ? -1 : trace->BeginSpan(name)) {}
  ~TraceSpan() { End(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Attr(const char* key, int64_t value) {
    if (trace_ != nullptr) trace_->SetAttr(id_, key, value);
  }
  void Attr(const char* key, const char* value) {
    if (trace_ != nullptr) trace_->SetAttr(id_, key, value);
  }

  /// Closes the span before scope exit (e.g. to exclude trailing work).
  /// Further Attr/End calls become no-ops.
  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(id_);
      trace_ = nullptr;
    }
  }

  Trace* trace() const { return trace_; }

 private:
  Trace* trace_;
  int id_;
};

/// Escapes `text` for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by the trace renderer and
/// the session's structured-output mode.
std::string JsonEscape(std::string_view text);

}  // namespace chainsplit

#endif  // CHAINSPLIT_OBS_TRACE_H_
