#include "obs/slow_log.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/strings.h"

namespace chainsplit {

SlowQueryLog::SlowQueryLog(std::string dir,
                           std::chrono::milliseconds threshold)
    : dir_(std::move(dir)), threshold_(threshold) {}

int64_t SlowQueryLog::queries_logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

StatusOr<std::string> SlowQueryLog::Record(
    const Trace& trace, std::chrono::microseconds duration) {
  if (!enabled() || duration < threshold_) return std::string();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!dir_ready_) {
      std::error_code ec;
      std::filesystem::create_directories(dir_, ec);
      if (ec) {
        return InternalError(
            StrCat("slow-query log: cannot create ", dir_, ": ",
                   ec.message()));
      }
      dir_ready_ = true;
    }
    path = StrCat(dir_, "/slow-", ++seq_, "-", duration.count() / 1000,
                  "ms.json");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError(StrCat("slow-query log: cannot open ", path));
  }
  out << trace.ToChromeJson();
  out.close();
  if (!out) {
    return InternalError(StrCat("slow-query log: write failed on ", path));
  }
  return path;
}

}  // namespace chainsplit
