#include "obs/trace.h"

#include <charconv>
#include <cstdio>

namespace chainsplit {

namespace {

// StrCat builds an ostringstream per call — too slow for a renderer
// that runs once per span. Append in place instead.
void AppendInt(std::string* out, int64_t value) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, end);
}

}  // namespace

Trace::Trace(std::string name)
    : t0_(Clock::now()), root_name_(std::move(name)) {
  Span& root = inline_spans_[0];
  root.parent = -1;
  root.start_us = 0;
  num_spans_ = 1;
  open_.reserve(8);
  open_.push_back(0);
}

int64_t Trace::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               t0_)
      .count();
}

int Trace::BeginSpan(const char* name) {
  const int id = num_spans_++;
  if (id >= kInlineSpans) extra_spans_.emplace_back();
  Span& s = span(id);
  s.name = name;
  s.parent = open_.empty() ? 0 : open_.back();
  s.start_us = NowUs();
  open_.push_back(id);
  return id;
}

void Trace::EndSpan(int id) {
  if (id < 0 || id >= num_spans_) return;
  Span& s = span(id);
  if (s.end_us < 0) s.end_us = NowUs();
  // Pop through any children an error unwind left open — their end
  // time is their parent's (they did not outlive it).
  while (!open_.empty() && open_.back() != id) {
    Span& dangling = span(open_.back());
    if (dangling.end_us < 0) dangling.end_us = s.end_us;
    open_.pop_back();
  }
  if (!open_.empty()) open_.pop_back();
}

void Trace::SetAttr(int id, const char* key, int64_t value) {
  if (id < 0 || id >= num_spans_) return;
  Span& s = span(id);
  if (s.num_attrs >= kMaxAttrs) return;
  Attr& attr = s.attrs[s.num_attrs++];
  attr.key = key;
  attr.string_value = nullptr;
  attr.int_value = value;
}

void Trace::SetAttr(int id, const char* key, const char* value) {
  if (id < 0 || id >= num_spans_) return;
  Span& s = span(id);
  if (s.num_attrs >= kMaxAttrs) return;
  Attr& attr = s.attrs[s.num_attrs++];
  attr.key = key;
  attr.string_value = value;
  attr.int_value = 0;
}

void Trace::Finish() {
  while (!open_.empty()) EndSpan(open_.back());
}

std::chrono::microseconds Trace::duration() const {
  const Span& root = inline_spans_[0];
  return std::chrono::microseconds(root.end_us >= 0 ? root.end_us : NowUs());
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string Trace::ToChromeJson() const {
  // Chrome trace_event format: an object with a "traceEvents" array of
  // complete ("X") events. Nesting is positional (ts/dur containment),
  // so the parent relation is also written explicitly into args.
  std::string out = "{\"traceEvents\":[";
  out.reserve(64 + static_cast<size_t>(num_spans_) * 160);
  const int64_t now = NowUs();
  for (int i = 0; i < num_spans_; ++i) {
    const Span& s = span(i);
    if (i > 0) out += ",";
    const int64_t end = s.end_us >= 0 ? s.end_us : now;
    out += "{\"name\":\"";
    out += i == 0 ? JsonEscape(root_name_) : JsonEscape(s.name);
    out += "\",\"cat\":\"query\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    AppendInt(&out, s.start_us);
    out += ",\"dur\":";
    AppendInt(&out, end - s.start_us);
    out += ",\"args\":{\"span_id\":";
    AppendInt(&out, i);
    out += ",\"parent_id\":";
    AppendInt(&out, s.parent);
    for (int a = 0; a < s.num_attrs; ++a) {
      const Attr& attr = s.attrs[a];
      out += ",\"";
      out += JsonEscape(attr.key);
      out += "\":";
      if (attr.string_value == nullptr) {
        AppendInt(&out, attr.int_value);
      } else {
        out += "\"";
        out += JsonEscape(attr.string_value);
        out += "\"";
      }
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace chainsplit
