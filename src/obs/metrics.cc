#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <thread>

#include "common/strings.h"

namespace chainsplit {

namespace obs_internal {

int ShardIndex() {
  // Hash of the thread id, computed once per thread. Distinct threads
  // may share a shard (kShards is small on purpose); that only costs
  // an occasional contended fetch_add, never correctness.
  thread_local const int shard = static_cast<int>(
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      static_cast<size_t>(kShards));
  return shard;
}

}  // namespace obs_internal

void Histogram::Record(int64_t value) {
  int bucket = 0;
  // Bucket b holds values < 2^b; values >= 2^(kBuckets-2) land in the
  // +Inf bucket.
  uint64_t v = value <= 0 ? 0 : static_cast<uint64_t>(value);
  while (bucket < kBuckets - 1 && v >= (uint64_t{1} << bucket)) ++bucket;
  Shard& shard = shards_[obs_internal::ShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Read() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (int b = 0; b < kBuckets; ++b) snap.count += snap.buckets[b];
  return snap;
}

int64_t Histogram::Snapshot::BucketBound(int b) {
  if (b >= kBuckets - 1) return std::numeric_limits<int64_t>::max();
  return int64_t{1} << b;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const int64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation inside [lower, upper): lower bound is the
      // previous bucket's bound (0 for bucket 0). The +Inf bucket has
      // no upper bound; report its lower bound.
      const double lower = b == 0 ? 0 : static_cast<double>(BucketBound(b - 1));
      if (b >= kBuckets - 1) return lower;
      const double upper = static_cast<double>(BucketBound(b));
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      return lower + (upper - lower) * within;
    }
    cumulative = next;
  }
  return static_cast<double>(BucketBound(kBuckets - 2));
}

MetricsRegistry::Series* MetricsRegistry::FindLocked(
    const std::string& name, const MetricLabels& labels, MetricType type) {
  for (const auto& series : series_) {
    if (series->callback == nullptr && series->name == name &&
        series->labels == labels && series->type == type) {
      return series.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Series* existing = FindLocked(name, labels, MetricType::kCounter)) {
    return existing->counter.get();
  }
  auto series = std::make_unique<Series>();
  series->name = name;
  series->help = help;
  series->type = MetricType::kCounter;
  series->labels = std::move(labels);
  series->counter = std::make_unique<Counter>();
  Counter* handle = series->counter.get();
  series_.push_back(std::move(series));
  return handle;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help,
                                 MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Series* existing = FindLocked(name, labels, MetricType::kGauge)) {
    return existing->gauge.get();
  }
  auto series = std::make_unique<Series>();
  series->name = name;
  series->help = help;
  series->type = MetricType::kGauge;
  series->labels = std::move(labels);
  series->gauge = std::make_unique<Gauge>();
  Gauge* handle = series->gauge.get();
  series_.push_back(std::move(series));
  return handle;
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Series* existing = FindLocked(name, labels, MetricType::kHistogram)) {
    return existing->histogram.get();
  }
  auto series = std::make_unique<Series>();
  series->name = name;
  series->help = help;
  series->type = MetricType::kHistogram;
  series->labels = std::move(labels);
  series->histogram = std::make_unique<Histogram>();
  Histogram* handle = series->histogram.get();
  series_.push_back(std::move(series));
  return handle;
}

uint64_t MetricsRegistry::AddCallback(const std::string& name,
                                      const std::string& help,
                                      MetricType type, MetricLabels labels,
                                      std::function<double()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  auto series = std::make_unique<Series>();
  series->name = name;
  series->help = help;
  series->type = type;
  series->labels = std::move(labels);
  series->callback = std::move(read);
  series->callback_id = next_callback_id_++;
  uint64_t id = series->callback_id;
  series_.push_back(std::move(series));
  return id;
}

void MetricsRegistry::RemoveCallback(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  series_.erase(
      std::remove_if(series_.begin(), series_.end(),
                     [id](const std::unique_ptr<Series>& s) {
                       return s->callback_id == id;
                     }),
      series_.end());
}

namespace {

/// Escapes a label value for the exposition format (backslash, quote,
/// newline).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Read-time quantiles with exact label text (formatting 0.95 through
/// a double→string round-trip yields "0.94999999999999996").
struct QuantileSpec {
  const char* label;
  double value;
};
constexpr QuantileSpec kQuantiles[] = {
    {"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};

/// Labels plus one extra pair (histogram `le`, quantile).
std::string RenderLabelsPlus(const MetricLabels& labels,
                             const std::string& key,
                             const std::string& value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

/// Doubles rendered like Prometheus clients: integral values without
/// an exponent, everything else with enough digits to round-trip.
std::string RenderValue(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return StrCat(static_cast<int64_t>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // Group series by metric name so each family gets exactly one
  // HELP/TYPE block (exposition-format requirement), preserving the
  // registration order of first appearance.
  std::vector<std::string> order;
  for (const auto& series : series_) {
    if (std::find(order.begin(), order.end(), series->name) == order.end()) {
      order.push_back(series->name);
    }
  }
  for (const std::string& name : order) {
    const Series* first = nullptr;
    for (const auto& series : series_) {
      if (series->name == name) {
        first = series.get();
        break;
      }
    }
    out += StrCat("# HELP ", name, " ", first->help, "\n");
    out += StrCat("# TYPE ", name, " ", TypeName(first->type), "\n");
    std::string quantiles;  // histogram p50/p95/p99, emitted after
    for (const auto& series : series_) {
      if (series->name != name) continue;
      if (series->callback != nullptr) {
        out += StrCat(name, RenderLabels(series->labels), " ",
                      RenderValue(series->callback()), "\n");
      } else if (series->type == MetricType::kCounter) {
        out += StrCat(name, RenderLabels(series->labels), " ",
                      series->counter->Value(), "\n");
      } else if (series->type == MetricType::kGauge) {
        out += StrCat(name, RenderLabels(series->labels), " ",
                      series->gauge->Value(), "\n");
      } else {
        const Histogram::Snapshot snap = series->histogram->Read();
        int64_t cumulative = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          cumulative += snap.buckets[b];
          // Skip interior zero-delta buckets to keep scrapes small;
          // always emit +Inf (== _count by construction).
          if (snap.buckets[b] == 0 && b < Histogram::kBuckets - 1) continue;
          const std::string le =
              b >= Histogram::kBuckets - 1
                  ? "+Inf"
                  : StrCat(Histogram::Snapshot::BucketBound(b));
          out += StrCat(name, "_bucket",
                        RenderLabelsPlus(series->labels, "le", le), " ",
                        cumulative, "\n");
        }
        out += StrCat(name, "_sum", RenderLabels(series->labels), " ",
                      snap.sum, "\n");
        out += StrCat(name, "_count", RenderLabels(series->labels), " ",
                      snap.count, "\n");
        for (const auto& q : kQuantiles) {
          quantiles += StrCat(
              name, "_quantile",
              RenderLabelsPlus(series->labels, "quantile", q.label), " ",
              RenderValue(snap.Quantile(q.value)), "\n");
        }
      }
    }
    if (!quantiles.empty()) {
      out += StrCat("# HELP ", name,
                    "_quantile read-time quantile estimates of ", name, "\n");
      out += StrCat("# TYPE ", name, "_quantile gauge\n");
      out += quantiles;
    }
  }
  return out;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  for (const auto& series : series_) {
    if (series->callback != nullptr) {
      samples.push_back({series->name, series->labels, series->callback()});
    } else if (series->type == MetricType::kCounter) {
      samples.push_back({series->name, series->labels,
                         static_cast<double>(series->counter->Value())});
    } else if (series->type == MetricType::kGauge) {
      samples.push_back({series->name, series->labels,
                         static_cast<double>(series->gauge->Value())});
    } else {
      const Histogram::Snapshot snap = series->histogram->Read();
      samples.push_back({series->name + "_count", series->labels,
                         static_cast<double>(snap.count)});
      samples.push_back({series->name + "_sum", series->labels,
                         static_cast<double>(snap.sum)});
      for (const auto& q : kQuantiles) {
        MetricLabels labels = series->labels;
        labels.emplace_back("quantile", q.label);
        samples.push_back(
            {series->name + "_quantile", labels, snap.Quantile(q.value)});
      }
    }
  }
  return samples;
}

double MetricsRegistry::CounterFamilyTotal(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0;
  for (const auto& series : series_) {
    if (series->name != name || series->type != MetricType::kCounter) continue;
    total += series->callback != nullptr
                 ? series->callback()
                 : static_cast<double>(series->counter->Value());
  }
  return total;
}

}  // namespace chainsplit
