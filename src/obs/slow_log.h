#ifndef CHAINSPLIT_OBS_SLOW_LOG_H_
#define CHAINSPLIT_OBS_SLOW_LOG_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/trace.h"

namespace chainsplit {

/// SlowQueryLog — writes the Chrome-trace JSON of any over-threshold
/// request into a directory (docs/observability.md §Slow-query log).
///
/// One file per slow query, named slow-<seq>-<duration_ms>ms.json so a
/// directory listing sorts by occurrence and shows the damage at a
/// glance. Thread-safe: concurrent slow queries serialize on the
/// sequence mutex only for the filename, then write independently.
class SlowQueryLog {
 public:
  /// `dir` is created if missing. `threshold` <= 0 disables the log
  /// (Record becomes a cheap no-op).
  SlowQueryLog(std::string dir, std::chrono::milliseconds threshold);

  bool enabled() const { return threshold_.count() > 0; }
  std::chrono::milliseconds threshold() const { return threshold_; }

  /// Writes `trace` if `duration` exceeds the threshold. Returns the
  /// path written (empty when under threshold or disabled); write
  /// failures are returned as a Status but should not fail the query —
  /// callers log and move on.
  StatusOr<std::string> Record(const Trace& trace,
                               std::chrono::microseconds duration);

  int64_t queries_logged() const;

 private:
  const std::string dir_;
  const std::chrono::milliseconds threshold_;
  mutable std::mutex mu_;
  int64_t seq_ = 0;
  bool dir_ready_ = false;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_OBS_SLOW_LOG_H_
