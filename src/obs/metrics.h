#ifndef CHAINSPLIT_OBS_METRICS_H_
#define CHAINSPLIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace chainsplit {

/// MetricsRegistry — the process-wide telemetry surface (docs/
/// observability.md). Every subsystem registers its counters, gauges
/// and latency histograms here; the `:metrics` session command renders
/// the whole registry as Prometheus text exposition, and the bench
/// harness snapshots it into BENCH_*.json.
///
/// Hot-path cost model: Counter::Inc and Histogram::Record are
/// wait-free — one relaxed fetch_add on a per-thread-sharded,
/// cache-line-padded slot, no locks, no allocation. Registration and
/// reading (Value/Snapshot/RenderPrometheus) take the registry mutex
/// and sum the shards; they are rare (a scrape, a `:cache` view) and
/// may observe concurrent updates torn *across* series but never a
/// lost or out-of-thin-air update *within* one.

/// Label set of one time series, fixed at registration.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace obs_internal {

/// Number of per-thread shards per hot counter. A power of two; 16
/// slots * 64 bytes keeps a counter within a few cache lines while
/// making cross-thread false sharing unlikely for typical worker
/// counts.
constexpr int kShards = 16;

/// Stable per-thread shard index (hashed thread id).
int ShardIndex();

struct alignas(64) PaddedAtomic {
  std::atomic<int64_t> value{0};
};

}  // namespace obs_internal

/// A monotone counter. Inc is wait-free; Value sums the shards (a
/// concurrent Inc may or may not be included — monotone either way).
class Counter {
 public:
  void Inc(int64_t n = 1) {
    shards_[obs_internal::ShardIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  obs_internal::PaddedAtomic shards_[obs_internal::kShards];
};

/// A point-in-time value (queue depth, open connections). Set/Add are
/// single-atomic; gauges are not sharded (they are read-modify-write
/// of one logical value, not a tally).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log-bucketed latency histogram over non-negative integer samples
/// (the service records microseconds). Bucket b counts samples with
/// value < 2^b (cumulative rendering happens at read time); the last
/// bucket is +Inf. Record is wait-free: two relaxed fetch_adds on the
/// caller's shard.
class Histogram {
 public:
  /// Bucket upper bounds 2^0 .. 2^(kBuckets-2) plus +Inf: 1us .. ~67s
  /// for microsecond samples.
  static constexpr int kBuckets = 28;

  void Record(int64_t value);

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    /// Per-bucket (non-cumulative) counts.
    int64_t buckets[kBuckets] = {};

    /// Upper bound of bucket `b` (int64 max for the +Inf bucket).
    static int64_t BucketBound(int b);
    /// Quantile estimate (q in [0,1]) by linear interpolation within
    /// the covering bucket. Returns 0 on an empty histogram.
    double Quantile(double q) const;
  };
  Snapshot Read() const;

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> buckets[kBuckets] = {};
    std::atomic<int64_t> sum{0};
  };
  Shard shards_[obs_internal::kShards];
};

/// One rendered sample (Snapshot output and callback results).
struct MetricSample {
  std::string name;
  MetricLabels labels;
  double value = 0;
};

enum class MetricType { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers one time series and returns its handle, owned by the
  /// registry and valid for the registry's lifetime. Re-registering an
  /// existing (name, labels) pair returns the existing handle — so
  /// independent subsystems can share a series family.
  Counter* AddCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {});
  Gauge* AddGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {});
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          MetricLabels labels = {});

  /// Registers a callback-backed series: `read` is invoked at render/
  /// snapshot time (under the registry mutex — keep it cheap and
  /// lock-ordered below any lock held while scraping). Returns an id
  /// for RemoveCallback; the owner MUST remove the callback before the
  /// state it reads dies (e.g. TcpServer::Stop unregisters its net
  /// counters).
  uint64_t AddCallback(const std::string& name, const std::string& help,
                       MetricType type, MetricLabels labels,
                       std::function<double()> read);
  void RemoveCallback(uint64_t id);

  /// Prometheus text exposition (version 0.0.4): one # HELP / # TYPE
  /// block per metric name, histogram series rendered as _bucket
  /// (cumulative, with le labels), _sum and _count, plus a computed
  /// <name>_quantile gauge family carrying p50/p95/p99.
  std::string RenderPrometheus() const;

  /// Flat samples for programmatic access (bench snapshots, tests).
  /// Histograms contribute <name>_count, <name>_sum and the three
  /// quantile samples.
  std::vector<MetricSample> Snapshot() const;

  /// Sum of every sample of the counter family `name` (all label
  /// sets, callbacks included). 0 when absent.
  double CounterFamilyTotal(const std::string& name) const;

 private:
  struct Series {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
    uint64_t callback_id = 0;
  };

  Series* FindLocked(const std::string& name, const MetricLabels& labels,
                     MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Series>> series_;
  uint64_t next_callback_id_ = 1;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_OBS_METRICS_H_
