// csdd — an interactive shell and query server for the ChainSplit
// deductive database.
//
//   $ csdd [--serve PORT] [serving flags] [program.dl ...]
//
// Serving flags (apply to --serve and later :serve commands):
//   --net-mode=epoll|threaded  front end: event loop + worker pool
//                              (default) or thread-per-connection
//   --listen-addr=ADDR         IPv4 bind address (default 127.0.0.1)
//   --listen-backlog=N         accept backlog (default 64)
//   --net-workers=N            dispatcher pool size (0 = auto)
//   --net-queue=N              bounded request-queue capacity; overflow
//                              answers "% overloaded" (default 256)
//   --max-line=BYTES           request-line size limit (default 1 MiB)
//
// Durability flags (docs/service.md §Durability):
//   --data-dir=DIR             recover from DIR on startup, then log
//                              every mutation there (WAL + snapshots)
//   --wal-sync=POLICY          always | interval (default) | none
//   --wal-sync-interval=MS     interval policy's fsync period (50)
//   --snapshot-every=N         auto-checkpoint after N logged records
//                              (0 = only on :snapshot)
//
// Observability flags (docs/observability.md):
//   --slow-query-ms=N          write the trace of every query taking
//                              >= N ms as Chrome trace_event JSON into
//                              the data dir (or --slow-query-dir)
//   --slow-query-dir=DIR       slow-query log directory (defaults to
//                              the --data-dir, or ./slow-queries)
//   --trace                    start with per-query tracing on
//                              (`:trace last` prints the newest trace)
//
// Evaluation flags (docs/service.md §Parallel SCC evaluation):
//   --parallel-scc=N           evaluate uncached queries SCC-by-SCC
//                              with up to N concurrent strata (0 =
//                              monolithic default, 1 = stratified
//                              serial); applies to the REPL and every
//                              server session, `:parallel N` overrides
//                              per session
//
// Loads each program file (facts, rules; queries in files run
// immediately), then reads from stdin:
//
//   ?- sg(tom, Y).          run a query (cached by the service)
//   p(a, b).                add a fact or rule
//   :load FILE              load another program file
//   :csv PRED/ARITY FILE    bulk-load facts from delimited text
//   :plan                   toggle plan printing
//   :stats                  toggle evaluator statistics
//   :deadline MS            per-query deadline (0 = none)
//   :preds                  list predicates with stored facts
//   :cache                  service cache/deadline counters
//   :serve PORT             serve the TCP line protocol (0 = ephemeral)
//   :help                   this text
//   :quit                   exit
//
// With --serve PORT the server starts before the REPL. :quit stops
// everything; a closed stdin (e.g. `csdd --serve 4242 < /dev/null &`)
// leaves the server running until SIGINT/SIGTERM, which shut down
// gracefully: stop accepting, drain in-flight requests, fsync the WAL,
// exit 0.
//
// Exit status: nonzero when any statement failed while loading files
// (command line or :load) or while reading non-interactive stdin, so
// batch pipelines observe errors.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "service/query_service.h"
#include "service/server.h"
#include "service/session.h"

namespace chainsplit {
namespace {

int Run(int argc, char** argv) {
  int serve_port = -1;
  ServerOptions server_options;
  DurabilityOptions durability;
  long long slow_query_ms = 0;
  std::string slow_query_dir;
  bool trace_on = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--serve" && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
    } else if (StartsWith(arg, "--serve=")) {
      serve_port = std::atoi(arg.c_str() + 8);
    } else if (StartsWith(arg, "--data-dir=")) {
      durability.data_dir = arg.substr(11);
    } else if (StartsWith(arg, "--wal-sync=")) {
      StatusOr<WalSyncPolicy> policy = ParseWalSyncPolicy(arg.substr(11));
      if (!policy.ok()) {
        std::printf("error: %s\n", policy.status().ToString().c_str());
        return 1;
      }
      durability.wal.sync = *policy;
    } else if (StartsWith(arg, "--wal-sync-interval=")) {
      durability.wal.sync_interval_ms = std::atoi(arg.c_str() + 20);
    } else if (StartsWith(arg, "--snapshot-every=")) {
      durability.snapshot_every_records = std::atoll(arg.c_str() + 17);
    } else if (StartsWith(arg, "--slow-query-ms=")) {
      slow_query_ms = std::atoll(arg.c_str() + 16);
    } else if (StartsWith(arg, "--slow-query-dir=")) {
      slow_query_dir = arg.substr(17);
    } else if (arg == "--trace") {
      trace_on = true;
    } else if (StartsWith(arg, "--net-mode=")) {
      std::string mode = arg.substr(11);
      if (mode == "epoll") {
        server_options.mode = ServerOptions::Mode::kEpoll;
      } else if (mode == "threaded") {
        server_options.mode = ServerOptions::Mode::kThreaded;
      } else {
        std::printf("error: --net-mode must be epoll or threaded\n");
        return 1;
      }
    } else if (StartsWith(arg, "--listen-addr=")) {
      server_options.listen_addr = arg.substr(14);
    } else if (StartsWith(arg, "--listen-backlog=")) {
      server_options.listen_backlog = std::atoi(arg.c_str() + 17);
    } else if (StartsWith(arg, "--net-workers=")) {
      server_options.workers = std::atoi(arg.c_str() + 14);
    } else if (StartsWith(arg, "--net-queue=")) {
      server_options.queue_capacity =
          static_cast<size_t>(std::atoll(arg.c_str() + 12));
    } else if (StartsWith(arg, "--max-line=")) {
      server_options.max_line_bytes =
          static_cast<size_t>(std::atoll(arg.c_str() + 11));
    } else if (StartsWith(arg, "--parallel-scc=")) {
      server_options.parallel_scc = std::atoi(arg.c_str() + 15);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: csdd [--serve PORT] [--net-mode=epoll|threaded]\n"
          "            [--listen-addr=ADDR] [--listen-backlog=N]\n"
          "            [--net-workers=N] [--net-queue=N] "
          "[--max-line=BYTES]\n"
          "            [--data-dir=DIR] [--wal-sync=always|interval|none]\n"
          "            [--wal-sync-interval=MS] [--snapshot-every=N]\n"
          "            [--slow-query-ms=N] [--slow-query-dir=DIR] "
          "[--trace]\n"
          "            [--parallel-scc=N] [program.dl ...]\n%s",
          Session::HelpText());
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }

  // Block SIGINT/SIGTERM before any thread exists (the durability
  // checkpointer, server threads): every later thread inherits the
  // mask, so a signal can only be consumed by the sigwait below and a
  // graceful shutdown is guaranteed in serve mode. In pure REPL mode
  // (no --serve) the default dispositions stay in place.
  sigset_t sigset;
  sigemptyset(&sigset);
  sigaddset(&sigset, SIGINT);
  sigaddset(&sigset, SIGTERM);
  if (serve_port >= 0) pthread_sigmask(SIG_BLOCK, &sigset, nullptr);

  QueryService service;
  if (!durability.data_dir.empty()) {
    StatusOr<RecoveryResult> recovered = service.EnableDurability(durability);
    if (!recovered.ok()) {
      std::printf("error: recovery failed: %s\n",
                  recovered.status().ToString().c_str());
      return 1;
    }
    if (recovered->cold_start) {
      std::printf("%% data dir %s: cold start\n",
                  durability.data_dir.c_str());
    } else {
      std::printf(
          "%% recovered from %s: snapshot lsn %llu, %lld records replayed, "
          "%lld skipped%s\n",
          durability.data_dir.c_str(),
          static_cast<unsigned long long>(recovered->snapshot_lsn),
          static_cast<long long>(recovered->replayed_records),
          static_cast<long long>(recovered->skipped_records),
          recovered->torn_tail ? " (torn tail dropped)" : "");
    }
    for (const std::string& note : recovered->notes) {
      std::printf("%% recovery: %s\n", note.c_str());
    }
    std::fflush(stdout);
  }
  if (trace_on) service.set_tracing(true);
  if (slow_query_ms > 0) {
    if (slow_query_dir.empty()) {
      slow_query_dir = durability.data_dir.empty()
                           ? std::string("./slow-queries")
                           : StrCat(durability.data_dir, "/slow-queries");
    }
    service.EnableSlowQueryLog(slow_query_dir,
                               std::chrono::milliseconds(slow_query_ms));
    std::printf("%% slow-query log: >= %lld ms -> %s\n", slow_query_ms,
                slow_query_dir.c_str());
    std::fflush(stdout);
  }
  SessionOptions repl_options;
  repl_options.parallel_scc = server_options.parallel_scc;
  Session session(&service, repl_options);
  int load_errors = 0;
  for (const std::string& file : files) {
    int errors_before = session.error_count();
    std::string out;
    session.HandleLine(StrCat(":load ", file), &out);
    std::fputs(out.c_str(), stdout);
    load_errors += session.error_count() - errors_before;
  }

  std::unique_ptr<TcpServer> server;
  if (serve_port >= 0) {
    server = std::make_unique<TcpServer>(&service, server_options);
    StatusOr<int> port = server->Start(serve_port);
    if (!port.ok()) {
      std::printf("error: %s\n", port.status().ToString().c_str());
      return 1;
    }
    std::printf("%% serving on port %d\n", *port);
    std::fflush(stdout);
  }

  const bool tty = isatty(0) != 0;
  if (tty) std::printf("ChainSplit-DDB shell — :help for commands\n");
  std::string line;
  int stdin_errors = 0;
  bool quit = false;
  while (true) {
    if (tty) std::printf(session.has_pending() ? "....> " : "csdd> ");
    if (!std::getline(std::cin, line)) break;
    // :serve needs the server object, so it is handled here rather
    // than in the session.
    if (!session.has_pending() && StartsWith(line, ":serve")) {
      if (server != nullptr) {
        std::printf("%% already serving on port %d\n", server->port());
        continue;
      }
      server = std::make_unique<TcpServer>(&service, server_options);
      StatusOr<int> port =
          server->Start(std::atoi(line.c_str() + 6));
      if (!port.ok()) {
        std::printf("error: %s\n", port.status().ToString().c_str());
        server.reset();
        ++stdin_errors;
        continue;
      }
      std::printf("%% serving on port %d\n", *port);
      std::fflush(stdout);
      continue;
    }
    int errors_before = session.error_count();
    std::string out;
    bool keep_going = session.HandleLine(line, &out);
    std::fputs(out.c_str(), stdout);
    std::fflush(stdout);
    int new_errors = session.error_count() - errors_before;
    stdin_errors += new_errors;
    if (StartsWith(line, ":load")) load_errors += new_errors;
    if (!keep_going) {
      quit = true;
      break;
    }
  }
  if (server != nullptr && !quit) {
    // stdin closed while serving: a daemon-style launch. Stay up until
    // SIGINT/SIGTERM (blocked in every thread since startup, so the
    // signal always lands here), then shut down gracefully.
    int sig = 0;
    sigwait(&sigset, &sig);
    std::printf("%% received %s, shutting down\n",
                sig == SIGINT ? "SIGINT" : "SIGTERM");
    std::fflush(stdout);
  }
  if (server != nullptr) server->Stop();  // stop accepting, drain, join
  Status flushed = service.FlushWal();
  if (!flushed.ok()) {
    std::printf("error: wal flush: %s\n", flushed.ToString().c_str());
    return 1;
  }
  if (server != nullptr) {
    std::printf("%% shutdown complete\n");
    std::fflush(stdout);
  }
  if (load_errors > 0) return 1;
  if (!tty && stdin_errors > 0) return 1;
  return 0;
}

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) { return chainsplit::Run(argc, argv); }
