// csdd — an interactive shell for the ChainSplit deductive database.
//
//   $ csdd [program.dl ...]
//
// Loads each program file (facts, rules; queries in files run
// immediately), then reads from stdin:
//
//   ?- sg(tom, Y).          run a query
//   p(a, b).                add a fact or rule
//   :load FILE              load another program file
//   :csv PRED/ARITY FILE    bulk-load facts from delimited text
//   :plan                   toggle plan printing
//   :stats                  toggle evaluator statistics
//   :preds                  list predicates with stored facts
//   :help                   this text
//   :quit                   exit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chainsplit.h"
#include "common/strings.h"

namespace chainsplit {
namespace {

struct ShellState {
  Database db;
  bool show_plan = false;
  bool show_stats = false;
};

void PrintHelp() {
  std::printf(
      "  ?- goal, goal.          run a query\n"
      "  head :- body.           add a rule (or `fact.`)\n"
      "  :load FILE              load a program file\n"
      "  :csv PRED/ARITY FILE    bulk-load facts (comma separated)\n"
      "  :plan                   toggle plan printing\n"
      "  :stats                  toggle evaluation statistics\n"
      "  :preds                  list predicates with stored facts\n"
      "  :quit                   exit\n");
}

void RunQuery(ShellState* state, const Query& query) {
  auto result = EvaluateQuery(&state->db, query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (state->show_plan) {
    std::printf("%% technique: %s\n%s",
                TechniqueToString(result->technique), result->plan.c_str());
  }
  const TermPool& pool = state->db.pool();
  if (result->vars.empty()) {
    std::printf(result->answers.empty() ? "no\n" : "yes\n");
  } else if (result->answers.empty()) {
    std::printf("no answers\n");
  } else {
    for (const Tuple& row : result->answers) {
      std::vector<std::string> bindings;
      for (size_t i = 0; i < result->vars.size(); ++i) {
        bindings.push_back(StrCat(pool.ToString(result->vars[i]), " = ",
                                  pool.ToString(row[i])));
      }
      std::printf("%s\n", StrJoin(bindings, ", ").c_str());
    }
    std::printf("%% %zu answer(s)\n", result->answers.size());
  }
  if (state->show_stats) {
    std::printf(
        "%% seminaive: %lld derived in %lld iterations; buffered: %lld "
        "states, %lld buffered; sld: %lld steps\n",
        static_cast<long long>(result->seminaive_stats.total_derived),
        static_cast<long long>(result->seminaive_stats.iterations),
        static_cast<long long>(result->buffered_stats.nodes),
        static_cast<long long>(result->buffered_stats.buffered_values),
        static_cast<long long>(result->topdown_stats.steps));
  }
}

/// Parses `text` as program input and executes it: facts/rules are
/// added, queries run immediately.
void Consume(ShellState* state, const std::string& text) {
  Program& program = state->db.program();
  size_t facts_before = program.facts().size();
  size_t queries_before = program.queries().size();
  Status status = ParseProgram(text, &program);
  if (!status.ok()) {
    std::printf("parse error: %s\n", status.ToString().c_str());
    return;
  }
  // Load only the newly added facts.
  for (size_t i = facts_before; i < program.facts().size(); ++i) {
    const Atom& fact = program.facts()[i];
    state->db.InsertFact(fact.pred, fact.args);
  }
  for (size_t i = queries_before; i < program.queries().size(); ++i) {
    RunQuery(state, program.queries()[i]);
  }
}

void LoadFile(ShellState* state, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("error: cannot open %s\n", path.c_str());
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Consume(state, buffer.str());
  std::printf("%% loaded %s\n", path.c_str());
}

void LoadCsv(ShellState* state, const std::string& args) {
  std::vector<std::string> parts = StrSplit(args, ' ');
  if (parts.size() != 2 || parts[0].find('/') == std::string::npos) {
    std::printf("usage: :csv PRED/ARITY FILE\n");
    return;
  }
  std::vector<std::string> spec = StrSplit(parts[0], '/');
  int arity = std::atoi(spec[1].c_str());
  PredId pred = state->db.program().InternPred(spec[0], arity);
  auto loaded = LoadFactsFromFile(&state->db, pred, parts[1]);
  if (!loaded.ok()) {
    std::printf("error: %s\n", loaded.status().ToString().c_str());
    return;
  }
  std::printf("%% %lld new tuples into %s\n",
              static_cast<long long>(*loaded), parts[0].c_str());
}

void ListPreds(ShellState* state) {
  for (PredId pred : state->db.StoredPredicates()) {
    const std::string& name = state->db.program().preds().name(pred);
    // Hide derived evaluation relations (adorned and magic predicates).
    if (StartsWith(name, "m_") || name.find("__") != std::string::npos) {
      continue;
    }
    const Relation* rel = state->db.GetRelation(pred);
    std::printf("  %-24s %lld tuples\n",
                state->db.program().preds().Display(pred).c_str(),
                static_cast<long long>(rel->size()));
  }
}

int Run(int argc, char** argv) {
  ShellState state;
  for (int i = 1; i < argc; ++i) LoadFile(&state, argv[i]);

  std::string line;
  std::string pending;
  bool tty = isatty(0);
  if (tty) {
    std::printf("ChainSplit-DDB shell — :help for commands\n");
  }
  while (true) {
    if (tty) std::printf(pending.empty() ? "csdd> " : "....> ");
    if (!std::getline(std::cin, line)) break;
    // Command lines.
    if (pending.empty() && !line.empty() && line[0] == ':') {
      size_t space = line.find(' ');
      std::string cmd = line.substr(0, space);
      std::string args =
          space == std::string::npos ? "" : line.substr(space + 1);
      if (cmd == ":quit" || cmd == ":q") break;
      if (cmd == ":help") {
        PrintHelp();
      } else if (cmd == ":load") {
        LoadFile(&state, args);
      } else if (cmd == ":csv") {
        LoadCsv(&state, args);
      } else if (cmd == ":plan") {
        state.show_plan = !state.show_plan;
        std::printf("%% plan printing %s\n", state.show_plan ? "on" : "off");
      } else if (cmd == ":stats") {
        state.show_stats = !state.show_stats;
        std::printf("%% statistics %s\n", state.show_stats ? "on" : "off");
      } else if (cmd == ":preds") {
        ListPreds(&state);
      } else {
        std::printf("unknown command %s — :help\n", cmd.c_str());
      }
      continue;
    }
    // Clause lines: accumulate until a terminating '.'.
    pending += line;
    pending += "\n";
    std::string trimmed = pending;
    while (!trimmed.empty() &&
           std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    if (!trimmed.empty() && trimmed.back() == '.') {
      Consume(&state, pending);
      pending.clear();
    }
  }
  return 0;
}

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) { return chainsplit::Run(argc, argv); }
